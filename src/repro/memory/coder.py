"""Coders for local routing functions.

A coder turns the local routing behaviour of a router into a decodable bit
string; its length is an *upper bound* on the memory requirement
``MEM_G(R, x)`` of the paper.  Different coders capture different entries of
Table 1:

* :class:`RawTableCoder` — one fixed-width port per destination:
  ``(n - 1) * ceil(log2 deg(x))`` bits, the classical routing-table size.
* :class:`IntervalTableCoder` — groups destinations routed through the same
  port into cyclic intervals (the interval routing representation);
  ``O(k * deg(x) * log n)`` bits for ``k`` intervals per arc, which collapses
  to ``O(deg(x) log n)`` on trees/outerplanar/unit circular-arc graphs.
* :class:`DefaultPortCoder` — stores the most frequent port plus the list of
  exceptions; captures schemes where almost all destinations leave through
  one arc (paths, stars, the padded path of Theorem 1's graph).
* :class:`ParametricCoder` — for closed-form schemes (e-cube on hypercubes,
  the modular labelling of ``K_n``) whose local behaviour is a fixed program
  plus the node's own label.

Every coder implements ``encode``/``decode``; the test-suite round-trips them
so that reported bit counts always correspond to genuinely decodable
descriptions.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.memory.encoding import BitReader, BitWriter, fixed_width
from repro.routing.interval import cyclic_intervals_of_set

__all__ = [
    "CoderResult",
    "LocalMapCoder",
    "RawTableCoder",
    "IntervalTableCoder",
    "DefaultPortCoder",
    "ParametricCoder",
    "best_coding",
]


@dataclass(frozen=True)
class CoderResult:
    """Outcome of encoding one router's local routing function.

    Attributes
    ----------
    coder:
        Name of the coder that produced the bits.
    bits:
        Length of the encoding in bits.
    payload:
        The actual bit string (as a list of 0/1), so tests can decode it.
    """

    coder: str
    bits: int
    payload: List[int]


class LocalMapCoder(abc.ABC):
    """Coder for a destination-based local map ``dest -> port``.

    The map's keys are every vertex except the router itself; ``n`` is the
    number of vertices of the network and ``degree`` the router's degree.
    These two integers (plus the router's label) are considered globally
    known ``O(log n)``-bit context, as in the paper's accounting.
    """

    name: str = "abstract"

    @abc.abstractmethod
    def encode(self, node: int, n: int, degree: int, local_map: Mapping[int, int]) -> CoderResult:
        """Encode the local map of ``node``."""

    @abc.abstractmethod
    def decode(self, node: int, n: int, degree: int, payload: List[int]) -> Dict[int, int]:
        """Decode a payload back into the local map."""


class RawTableCoder(LocalMapCoder):
    """Fixed-width table: ``ceil(log2 degree)`` bits per destination.

    Ports are ``1..degree``; each entry stores ``port - 1`` on
    ``fixed_width(degree - 1)`` bits, scanning destinations in increasing
    label order and skipping the router itself.
    """

    name = "raw-table"

    def encode(self, node: int, n: int, degree: int, local_map: Mapping[int, int]) -> CoderResult:
        width = fixed_width(max(degree - 1, 0))
        writer = BitWriter()
        for dest in range(n):
            if dest == node:
                continue
            port = local_map[dest]
            if not 1 <= port <= degree:
                raise ValueError(f"invalid port {port} at node {node} (degree {degree})")
            writer.write_uint(port - 1, width)
        return CoderResult(self.name, writer.bit_length, writer.to_bits())

    def decode(self, node: int, n: int, degree: int, payload: List[int]) -> Dict[int, int]:
        width = fixed_width(max(degree - 1, 0))
        reader = BitReader(payload)
        out: Dict[int, int] = {}
        for dest in range(n):
            if dest == node:
                continue
            out[dest] = reader.read_uint(width) + 1
        return out


class IntervalTableCoder(LocalMapCoder):
    """Interval-compressed table.

    For each port ``p`` (in increasing order) the coder stores the number of
    cyclic intervals of the destination set routed through ``p`` (Elias
    gamma, shifted by one so zero intervals is representable) followed by the
    interval endpoints on ``ceil(log2 n)`` bits each.  Decoding rebuilds the
    full map.  On a tree labelled by DFS numbers this is the
    ``O(deg log n)``-bit representation of Section 1.

    The coder assumes the destination *labels* are the vertex labels
    themselves; schemes that relabel vertices should encode their own
    labelling's local map (see
    :meth:`repro.routing.interval.IntervalRoutingFunction.local_map`).
    """

    name = "interval-table"

    def encode(self, node: int, n: int, degree: int, local_map: Mapping[int, int]) -> CoderResult:
        label_width = fixed_width(max(n - 1, 0))
        by_port: Dict[int, List[int]] = {}
        for dest, port in local_map.items():
            if not 1 <= port <= degree:
                raise ValueError(f"invalid port {port} at node {node} (degree {degree})")
            by_port.setdefault(port, []).append(dest)
        writer = BitWriter()
        for port in range(1, degree + 1):
            labels = by_port.get(port, [])
            intervals = cyclic_intervals_of_set(labels, n) if labels else []
            writer.write_elias_gamma(len(intervals) + 1)
            for lo, hi in intervals:
                writer.write_uint(lo, label_width)
                writer.write_uint(hi, label_width)
        return CoderResult(self.name, writer.bit_length, writer.to_bits())

    def decode(self, node: int, n: int, degree: int, payload: List[int]) -> Dict[int, int]:
        label_width = fixed_width(max(n - 1, 0))
        reader = BitReader(payload)
        out: Dict[int, int] = {}
        for port in range(1, degree + 1):
            count = reader.read_elias_gamma() - 1
            for _ in range(count):
                lo = reader.read_uint(label_width)
                hi = reader.read_uint(label_width)
                length = (hi - lo) % n + 1
                for k in range(length):
                    dest = (lo + k) % n
                    out[dest] = port
        out.pop(node, None)
        return out


class DefaultPortCoder(LocalMapCoder):
    """Default port + exception list.

    Stores the most frequent port, the number of exceptions, then each
    exception as ``(destination, port)`` on ``ceil(log2 n) + ceil(log2 deg)``
    bits.  Collapses to ``O(log n)`` bits on routers all of whose traffic
    leaves through one arc (e.g. the vertices of the padded path in the
    Theorem 1 construction).
    """

    name = "default-port"

    def encode(self, node: int, n: int, degree: int, local_map: Mapping[int, int]) -> CoderResult:
        port_width = fixed_width(max(degree - 1, 0))
        label_width = fixed_width(max(n - 1, 0))
        counts: Dict[int, int] = {}
        for port in local_map.values():
            if not 1 <= port <= degree:
                raise ValueError(f"invalid port {port} at node {node} (degree {degree})")
            counts[port] = counts.get(port, 0) + 1
        default_port = max(counts, key=lambda p: (counts[p], -p)) if counts else 1
        exceptions = [(dest, port) for dest, port in sorted(local_map.items()) if port != default_port]
        writer = BitWriter()
        writer.write_uint(default_port - 1, port_width)
        writer.write_elias_gamma(len(exceptions) + 1)
        for dest, port in exceptions:
            writer.write_uint(dest, label_width)
            writer.write_uint(port - 1, port_width)
        return CoderResult(self.name, writer.bit_length, writer.to_bits())

    def decode(self, node: int, n: int, degree: int, payload: List[int]) -> Dict[int, int]:
        port_width = fixed_width(max(degree - 1, 0))
        label_width = fixed_width(max(n - 1, 0))
        reader = BitReader(payload)
        default_port = reader.read_uint(port_width) + 1
        num_exceptions = reader.read_elias_gamma() - 1
        out = {dest: default_port for dest in range(n) if dest != node}
        for _ in range(num_exceptions):
            dest = reader.read_uint(label_width)
            port = reader.read_uint(port_width) + 1
            out[dest] = port
        return out


class ParametricCoder:
    """Coder for closed-form local routing functions.

    Schemes whose routing functions expose ``parametric_description_bits()``
    (e-cube on hypercubes, the modular complete-graph rule) are describable
    by a constant program plus the node's own label; this coder simply
    reports that size.  It does not implement ``decode`` because the
    "payload" is the node label itself.
    """

    name = "parametric"

    def encode_function(self, routing_function, node: int) -> Optional[CoderResult]:
        """Return the parametric size for ``node`` or ``None`` if unsupported."""
        describe = getattr(routing_function, "parametric_description_bits", None)
        if describe is None:
            return None
        bits = int(describe())
        return CoderResult(self.name, bits, [])


def best_coding(
    node: int,
    n: int,
    degree: int,
    local_map: Mapping[int, int],
    coders: Optional[Sequence[LocalMapCoder]] = None,
) -> CoderResult:
    """Smallest encoding of a local map among the given coders.

    Defaults to raw, interval and default-port coders; the minimum over
    decodable encodings is the library's computable proxy for
    ``MEM_G(R, x)``.
    """
    if coders is None:
        coders = (RawTableCoder(), IntervalTableCoder(), DefaultPortCoder())
    results = [coder.encode(node, n, degree, local_map) for coder in coders]
    if not results:
        raise ValueError("at least one coder is required")
    return min(results, key=lambda r: r.bits)
