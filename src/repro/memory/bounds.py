"""Closed-form memory bounds as a function of the stretch factor (Table 1).

The paper's Table 1 collects the best bounds known in 1996 on the local and
global memory requirement of universal routing schemes on ``n``-node
networks, per stretch-factor regime, together with the paper's own
improvement (Theorem 1) of the ``1 <= s < 2`` local entry to
``Theta(n log n)``.

The scanned table is partially garbled in the source text, so the formulas
below are reconstructed from the references the table cites (Peleg & Upfal
1989; Awerbuch, Bar-Noy, Linial & Peleg 1990; Awerbuch & Peleg 1992;
Fraigniaud & Gavoille PODC'95; Gavoille & Pérennès 1995) and from the
surviving fragments; every function documents which entry it reconstructs.
Absolute constants are irrelevant to the shape comparisons of experiment E1
and are set to 1 unless the source states one.

All functions return *bits* for an ``n``-node network.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional

__all__ = [
    "BoundEntry",
    "routing_table_local_upper",
    "routing_table_global_upper",
    "shortest_path_local_lower",
    "stretch_below_2_local_lower",
    "stretch_below_2_global_lower",
    "stretch_below_3_global_lower",
    "peleg_upfal_global_lower",
    "interval_tree_local_upper",
    "hypercube_local_upper",
    "complete_graph_adversarial_local",
    "complete_graph_good_local",
    "landmark_scheme_local_upper",
    "large_stretch_global_upper",
    "table1_rows",
]


def _log2(x: float) -> float:
    return math.log2(x) if x > 1 else 0.0


# ----------------------------------------------------------------------
# Upper bounds (concrete schemes)
# ----------------------------------------------------------------------
def routing_table_local_upper(n: int, max_degree: Optional[int] = None) -> float:
    """Routing tables: ``(n - 1) * ceil(log2 deg)`` bits per router.

    This is the ``O(n log n)`` local upper bound valid at every stretch
    (tables route along shortest paths).  ``max_degree`` defaults to
    ``n - 1``.
    """
    if n <= 1:
        return 0.0
    degree = (n - 1) if max_degree is None else max_degree
    return (n - 1) * max(math.ceil(_log2(max(degree, 2))), 1)


def routing_table_global_upper(n: int, max_degree: Optional[int] = None) -> float:
    """Routing tables, summed over the ``n`` routers: ``O(n^2 log n)`` bits."""
    return n * routing_table_local_upper(n, max_degree)


def interval_tree_local_upper(n: int, degree: int) -> float:
    """1-interval routing on trees/outerplanar/unit circular-arc graphs.

    ``O(d log n)`` bits per router: one interval (two ``ceil(log2 n)``-bit
    endpoints) per incident arc.
    """
    if n <= 1:
        return 0.0
    return 2.0 * degree * math.ceil(_log2(n))


def hypercube_local_upper(n: int) -> float:
    """E-cube routing on the hypercube: ``O(log n)`` bits per router."""
    return math.ceil(_log2(max(n, 2)))


def complete_graph_good_local(n: int) -> float:
    """Complete graph with a suitable port labelling: ``O(log n)`` bits."""
    return math.ceil(_log2(max(n, 2)))


def complete_graph_adversarial_local(n: int) -> float:
    """Complete graph with an adversarial port labelling: ``log2((n-1)!)`` bits."""
    if n <= 2:
        return 0.0
    return math.lgamma(n) / math.log(2)


def landmark_scheme_local_upper(n: int) -> float:
    """Cowen-style landmark routing (stretch 3): ``~sqrt(n log n) * log n`` bits.

    With ``|L| = ceil(sqrt(n log n))`` landmarks the expected cluster size is
    ``O(sqrt(n log n))``; each stored entry costs ``O(log n)`` bits.
    """
    if n <= 1:
        return 0.0
    logn = max(_log2(n), 1.0)
    return 2.0 * math.sqrt(n * logn) * logn


def large_stretch_global_upper(n: int, stretch: float) -> float:
    """Awerbuch–Peleg style global upper bound ``O(n^{1 + 1/k} log n)`` for stretch ``O(k)``.

    Reconstructs the large-stretch rows of Table 1: for stretch ``s`` the
    parameter is ``k = max(1, floor((s + 1) / 4))`` (the cited schemes
    achieve stretch ``4k - 3`` or ``2k - 1`` depending on the variant; the
    exponent shape ``1 + 1/k`` is what the table tracks).
    """
    if n <= 1:
        return 0.0
    k = max(1.0, (stretch + 1.0) / 4.0)
    return (n ** (1.0 + 1.0 / k)) * max(_log2(n), 1.0)


# ----------------------------------------------------------------------
# Lower bounds
# ----------------------------------------------------------------------
def shortest_path_local_lower(n: int) -> float:
    """Gavoille & Pérennès: some router needs ``Omega(n log n)`` bits at stretch 1.

    Stated in the paper's introduction: ``Theta(n)`` routers of an ``n``-node
    network may each require ``Theta(n log n)`` bits for shortest-path
    routing.  Constant taken as 1/2 on ``n/2 * log2(n/2)``.
    """
    if n <= 4:
        return 0.0
    return (n / 2.0) * _log2(n / 2.0)


def stretch_below_2_local_lower(n: int, eps: float = 0.5) -> float:
    """Theorem 1 of the reproduced paper: ``Omega(n^{1-eps} log n)`` bits per router.

    For ``Theta(n^eps)`` routers simultaneously; see
    :mod:`repro.constraints.lower_bound` for the exact finite-``n`` bound the
    proof yields (this closed form keeps only the leading term).
    """
    if n <= 4 or not 0 < eps < 1:
        return 0.0
    return (n ** (1.0 - eps)) * _log2(n)


def stretch_below_2_global_lower(n: int) -> float:
    """Fraigniaud & Gavoille (PODC'95): ``Omega(n^2)`` total bits for stretch < 2."""
    if n <= 2:
        return 0.0
    return float(n * n) / 4.0


def stretch_below_3_global_lower(n: int) -> float:
    """Total memory lower bound ``Omega(n^2)`` (up to log factors) for stretch < 3."""
    if n <= 2:
        return 0.0
    return float(n * n) / 8.0


def peleg_upfal_global_lower(n: int, stretch: float) -> float:
    """Peleg & Upfal: any stretch-``s`` universal scheme needs ``Omega(n^{1 + 1/(2s+4)})`` total bits."""
    if n <= 2 or stretch < 1:
        return 0.0
    return n ** (1.0 + 1.0 / (2.0 * stretch + 4.0))


# ----------------------------------------------------------------------
# Table 1 rows
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BoundEntry:
    """One row of the reproduced Table 1.

    ``local_lower``, ``local_upper``, ``global_lower`` and ``global_upper``
    are callables ``n -> bits``; ``stretch_range`` is the half-open interval
    ``[low, high)`` of stretch factors the row covers (``high`` may be
    ``inf``).
    """

    stretch_range: tuple
    description: str
    local_lower: Callable[[int], float]
    local_upper: Callable[[int], float]
    global_lower: Callable[[int], float]
    global_upper: Callable[[int], float]


def table1_rows(eps: float = 0.5) -> List[BoundEntry]:
    """The rows of Table 1 *after* the paper's improvement (Theorem 1).

    The ``1 <= s < 2`` row's local entry is ``Theta(n log n)`` — the paper's
    contribution — rather than the pre-1996 ``Omega(n)`` entry.
    """
    return [
        BoundEntry(
            stretch_range=(1.0, 1.0),
            description="shortest paths (s = 1)",
            local_lower=shortest_path_local_lower,
            local_upper=lambda n: routing_table_local_upper(n),
            global_lower=lambda n: n * shortest_path_local_lower(n) / 2.0,
            global_upper=routing_table_global_upper,
        ),
        BoundEntry(
            stretch_range=(1.0, 2.0),
            description="near-shortest paths (1 <= s < 2), Theorem 1",
            local_lower=shortest_path_local_lower,
            local_upper=lambda n: routing_table_local_upper(n),
            global_lower=stretch_below_2_global_lower,
            global_upper=routing_table_global_upper,
        ),
        BoundEntry(
            stretch_range=(2.0, 3.0),
            description="2 <= s < 3",
            local_lower=lambda n: n / 4.0,
            local_upper=lambda n: routing_table_local_upper(n),
            global_lower=stretch_below_3_global_lower,
            global_upper=routing_table_global_upper,
        ),
        BoundEntry(
            stretch_range=(3.0, 5.0),
            description="3 <= s < 5 (landmark-style schemes become competitive)",
            local_lower=lambda n: peleg_upfal_global_lower(n, 3.0) / n,
            local_upper=landmark_scheme_local_upper,
            global_lower=lambda n: peleg_upfal_global_lower(n, 3.0),
            global_upper=lambda n: large_stretch_global_upper(n, 3.0),
        ),
        BoundEntry(
            stretch_range=(5.0, 9.0),
            description="5 <= s < 9",
            local_lower=lambda n: peleg_upfal_global_lower(n, 5.0) / n,
            local_upper=lambda n: large_stretch_global_upper(n, 5.0) / max(n ** 0.5, 1.0),
            global_lower=lambda n: peleg_upfal_global_lower(n, 5.0),
            global_upper=lambda n: large_stretch_global_upper(n, 5.0),
        ),
        BoundEntry(
            stretch_range=(9.0, float("inf")),
            description="s >= 9 (polylog memory becomes possible globally)",
            local_lower=lambda n: peleg_upfal_global_lower(n, 9.0) / n,
            local_upper=lambda n: large_stretch_global_upper(n, 9.0) / max(n ** 0.75, 1.0),
            global_lower=lambda n: peleg_upfal_global_lower(n, 9.0),
            global_upper=lambda n: large_stretch_global_upper(n, 9.0),
        ),
    ]
