"""Generators for the graph families discussed in the paper.

Section 1 of Fraigniaud & Gavoille (1996) motivates the memory-requirement
question with several concrete families:

* the hypercube ``H_n`` (``MEM_local(H, 1) = O(log n)`` through e-cube
  routing),
* acyclic graphs (trees), outerplanar graphs and unit circular-arc graphs
  (``O(d log n)`` through 1-interval routing),
* chordal graphs (``O(n log^2 n)`` global),
* the complete graph ``K_n`` (``Theta(n log n)`` under an adversarial port
  labelling, ``O(log n)`` under a good one),
* the Petersen graph (Figure 1's matrix of constraints).

All generators return :class:`~repro.graphs.digraph.PortLabeledGraph`
instances with the *canonical* port labelling (ports sorted by neighbour
label) unless stated otherwise; routing schemes relabel ports as they see
fit.
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.graphs.digraph import PortLabeledGraph

__all__ = [
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "complete_bipartite_graph",
    "hypercube",
    "grid_2d",
    "torus_2d",
    "petersen_graph",
    "binary_tree",
    "random_tree",
    "caterpillar_tree",
    "outerplanar_graph",
    "unit_circular_arc_graph",
    "interval_graph_from_intervals",
    "random_interval_graph",
    "random_chordal_graph",
    "random_connected_graph",
    "random_regular_graph",
    "butterfly_like_expander",
]


def _finalize(g: PortLabeledGraph) -> PortLabeledGraph:
    g.sort_ports_by_neighbor()
    return g


def path_graph(n: int) -> PortLabeledGraph:
    """Path on ``n`` vertices ``0 - 1 - ... - (n-1)``."""
    if n < 1:
        raise ValueError("path graph needs at least one vertex")
    return _finalize(PortLabeledGraph(n, [(i, i + 1) for i in range(n - 1)]))


def cycle_graph(n: int) -> PortLabeledGraph:
    """Cycle on ``n >= 3`` vertices."""
    if n < 3:
        raise ValueError("cycle graph needs at least three vertices")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return _finalize(PortLabeledGraph(n, edges))


def star_graph(n: int) -> PortLabeledGraph:
    """Star with centre 0 and ``n - 1`` leaves."""
    if n < 1:
        raise ValueError("star graph needs at least one vertex")
    return _finalize(PortLabeledGraph(n, [(0, i) for i in range(1, n)]))


def complete_graph(n: int) -> PortLabeledGraph:
    """Complete graph ``K_n``."""
    if n < 1:
        raise ValueError("complete graph needs at least one vertex")
    edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
    return _finalize(PortLabeledGraph(n, edges))


def complete_bipartite_graph(a: int, b: int) -> PortLabeledGraph:
    """Complete bipartite graph ``K_{a,b}`` with parts ``0..a-1`` and ``a..a+b-1``."""
    if a < 1 or b < 1:
        raise ValueError("both parts must be non-empty")
    edges = [(i, a + j) for i in range(a) for j in range(b)]
    return _finalize(PortLabeledGraph(a + b, edges))


def hypercube(dimension: int) -> PortLabeledGraph:
    """Hypercube of the given dimension (``2**dimension`` vertices).

    Vertex labels are the integers whose binary expansion gives the
    coordinates; two vertices are adjacent iff their labels differ in exactly
    one bit.  The canonical port labelling puts the neighbour differing in
    bit ``k`` (0-based, least significant first) at port ``k + 1`` — the
    labelling that makes e-cube routing describable in ``O(log n)`` bits.
    """
    if dimension < 0:
        raise ValueError("dimension must be non-negative")
    n = 1 << dimension
    g = PortLabeledGraph(n)
    for u in range(n):
        for k in range(dimension):
            v = u ^ (1 << k)
            if u < v:
                g.add_edge(u, v)
    for u in range(n):
        mapping = {u ^ (1 << k): k + 1 for k in range(dimension)}
        g.set_port_labeling(u, mapping)
    return g


def grid_2d(rows: int, cols: int) -> PortLabeledGraph:
    """``rows x cols`` 2D mesh; vertex ``(r, c)`` is labelled ``r * cols + c``."""
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    g = PortLabeledGraph(rows * cols)
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            if c + 1 < cols:
                g.add_edge(u, u + 1)
            if r + 1 < rows:
                g.add_edge(u, u + cols)
    return _finalize(g)


def torus_2d(rows: int, cols: int) -> PortLabeledGraph:
    """``rows x cols`` 2D torus (wrap-around mesh); needs both sides >= 3."""
    if rows < 3 or cols < 3:
        raise ValueError("torus dimensions must be at least 3 to avoid multi-edges")
    g = PortLabeledGraph(rows * cols)
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            g.add_edge(u, r * cols + (c + 1) % cols)
            g.add_edge(u, ((r + 1) % rows) * cols + c)
    return _finalize(g)


def petersen_graph() -> PortLabeledGraph:
    """The Petersen graph (10 vertices, 15 edges, girth 5).

    Vertices ``0..4`` form the outer 5-cycle, ``5..9`` the inner pentagram;
    spoke ``i - (i + 5)`` connects them.  This is the graph of the paper's
    Figure 1.
    """
    g = PortLabeledGraph(10)
    for i in range(5):
        g.add_edge(i, (i + 1) % 5)          # outer cycle
        g.add_edge(5 + i, 5 + (i + 2) % 5)  # inner pentagram
        g.add_edge(i, 5 + i)                # spokes
    return _finalize(g)


def binary_tree(height: int) -> PortLabeledGraph:
    """Complete binary tree of the given height (``2**(height+1) - 1`` vertices)."""
    if height < 0:
        raise ValueError("height must be non-negative")
    n = (1 << (height + 1)) - 1
    g = PortLabeledGraph(n)
    for v in range(1, n):
        g.add_edge((v - 1) // 2, v)
    return _finalize(g)


def random_tree(n: int, seed: Optional[int] = None) -> PortLabeledGraph:
    """Uniformly random labelled tree on ``n`` vertices (Prüfer sequence)."""
    if n < 1:
        raise ValueError("tree needs at least one vertex")
    if n == 1:
        return PortLabeledGraph(1)
    if n == 2:
        return _finalize(PortLabeledGraph(2, [(0, 1)]))
    rng = np.random.default_rng(seed)
    prufer = rng.integers(0, n, size=n - 2)
    degree = np.ones(n, dtype=np.int64)
    for x in prufer:
        degree[x] += 1
    edges: List[Tuple[int, int]] = []
    leaves = sorted(int(v) for v in range(n) if degree[v] == 1)
    import heapq

    heapq.heapify(leaves)
    for x in prufer:
        leaf = heapq.heappop(leaves)
        edges.append((leaf, int(x)))
        degree[x] -= 1
        if degree[x] == 1:
            heapq.heappush(leaves, int(x))
    u = heapq.heappop(leaves)
    v = heapq.heappop(leaves)
    edges.append((u, v))
    return _finalize(PortLabeledGraph(n, edges))


def caterpillar_tree(spine: int, legs_per_node: int) -> PortLabeledGraph:
    """Caterpillar: a spine path with ``legs_per_node`` leaves on each spine vertex."""
    if spine < 1 or legs_per_node < 0:
        raise ValueError("spine must be positive and legs_per_node non-negative")
    n = spine * (1 + legs_per_node)
    g = PortLabeledGraph(n)
    for i in range(spine - 1):
        g.add_edge(i, i + 1)
    leaf = spine
    for i in range(spine):
        for _ in range(legs_per_node):
            g.add_edge(i, leaf)
            leaf += 1
    return _finalize(g)


def outerplanar_graph(n: int, extra_chords: int = 0, seed: Optional[int] = None) -> PortLabeledGraph:
    """Random maximal-ish outerplanar graph on ``n >= 3`` vertices.

    Starts from the cycle ``0..n-1`` (all vertices on the outer face) and
    adds up to ``extra_chords`` non-crossing chords chosen by repeatedly
    splitting faces — the standard fan construction keeps the graph
    outerplanar.
    """
    if n < 3:
        raise ValueError("outerplanar graph needs at least three vertices")
    rng = np.random.default_rng(seed)
    edges = set((i, (i + 1) % n) for i in range(n))
    edges = {(min(u, v), max(u, v)) for u, v in edges}
    # Non-crossing chords: maintain a set of "intervals" (faces) of the outer
    # cycle; splitting an interval [i, j] at k adds chord (i, j) only when the
    # interval has length >= 2.  This is a triangulation-style process.
    intervals: List[Tuple[int, int]] = [(0, n - 1)]
    added = 0
    while added < extra_chords and intervals:
        idx = int(rng.integers(0, len(intervals)))
        i, j = intervals.pop(idx)
        if j - i < 2:
            continue
        k = int(rng.integers(i + 1, j))
        chord_candidates = []
        if (min(i, k), max(i, k)) not in edges and abs(i - k) > 1:
            chord_candidates.append((i, k))
        if (min(k, j), max(k, j)) not in edges and abs(k - j) > 1:
            chord_candidates.append((k, j))
        for u, v in chord_candidates:
            if added >= extra_chords:
                break
            edges.add((min(u, v), max(u, v)))
            added += 1
        intervals.append((i, k))
        intervals.append((k, j))
    return _finalize(PortLabeledGraph(n, sorted(edges)))


def interval_graph_from_intervals(intervals: Sequence[Tuple[float, float]]) -> PortLabeledGraph:
    """Intersection graph of the given closed real intervals."""
    n = len(intervals)
    g = PortLabeledGraph(n)
    for i in range(n):
        ai, bi = intervals[i]
        if bi < ai:
            raise ValueError(f"interval {i} has negative length: {intervals[i]}")
        for j in range(i + 1, n):
            aj, bj = intervals[j]
            if ai <= bj and aj <= bi:
                g.add_edge(i, j)
    return _finalize(g)


def random_interval_graph(n: int, length: float = 0.3, seed: Optional[int] = None) -> PortLabeledGraph:
    """Random interval graph: ``n`` intervals with random starts in [0,1]."""
    rng = np.random.default_rng(seed)
    starts = rng.random(n)
    intervals = [(float(s), float(s + length)) for s in starts]
    return interval_graph_from_intervals(intervals)


def unit_circular_arc_graph(
    n: int, arc_fraction: float = 0.3, seed: Optional[int] = None
) -> PortLabeledGraph:
    """Random unit circular-arc graph.

    ``n`` arcs of identical angular width ``arc_fraction * 2 * pi`` with
    uniformly random starting angles; vertices are adjacent iff the arcs
    intersect on the circle.
    """
    if not 0 < arc_fraction < 1:
        raise ValueError("arc_fraction must lie strictly between 0 and 1")
    rng = np.random.default_rng(seed)
    starts = rng.random(n)
    width = arc_fraction
    g = PortLabeledGraph(n)

    def _intersect(s1: float, s2: float) -> bool:
        d = abs(s1 - s2)
        d = min(d, 1.0 - d)
        return d <= width

    for i in range(n):
        for j in range(i + 1, n):
            if _intersect(float(starts[i]), float(starts[j])):
                g.add_edge(i, j)
    return _finalize(g)


def random_chordal_graph(n: int, extra_edges: int = 0, seed: Optional[int] = None) -> PortLabeledGraph:
    """Random connected chordal graph built by reversing a perfect elimination order.

    Vertex ``i`` (added ``i``-th) picks a random already-present vertex clique
    seed and connects to a random clique around it, which guarantees
    chordality; ``extra_edges`` controls the expected density.
    """
    if n < 1:
        raise ValueError("chordal graph needs at least one vertex")
    rng = np.random.default_rng(seed)
    adj: List[set] = [set() for _ in range(n)]
    for v in range(1, n):
        anchor = int(rng.integers(0, v))
        # Connect to anchor plus a random subset of anchor's earlier neighbours
        # (a clique in the already-built graph restricted to earlier vertices).
        clique = {anchor}
        candidates = [u for u in adj[anchor] if u < v]
        rng.shuffle(candidates)
        take = int(rng.integers(0, len(candidates) + 1)) if extra_edges > 0 else 0
        for u in candidates[:take]:
            if all(w in adj[u] or w == u for w in clique):
                clique.add(u)
        for u in clique:
            adj[v].add(u)
            adj[u].add(v)
    edges = [(u, v) for u in range(n) for v in adj[u] if u < v]
    return _finalize(PortLabeledGraph(n, edges))


def random_connected_graph(
    n: int, extra_edge_prob: float = 0.1, seed: Optional[int] = None
) -> PortLabeledGraph:
    """Random connected graph: a random spanning tree plus Erdős–Rényi extra edges."""
    if not 0 <= extra_edge_prob <= 1:
        raise ValueError("extra_edge_prob must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    tree = random_tree(n, seed=None if seed is None else seed + 1)
    g = tree.copy()
    if n >= 2 and extra_edge_prob > 0:
        upper = np.triu_indices(n, k=1)
        mask = rng.random(len(upper[0])) < extra_edge_prob
        for u, v in zip(upper[0][mask], upper[1][mask]):
            if not g.has_edge(int(u), int(v)):
                g.add_edge(int(u), int(v))
    return _finalize(g)


def random_regular_graph(n: int, degree: int, seed: Optional[int] = None) -> PortLabeledGraph:
    """Random ``degree``-regular simple connected graph (networkx backed).

    Retries the pairing model until the sampled graph is simple and
    connected; raises :class:`ValueError` when ``n * degree`` is odd or
    ``degree >= n``.
    """
    import networkx as nx

    if degree >= n or (n * degree) % 2 != 0:
        raise ValueError("need degree < n and n*degree even")
    rng_seed = seed
    for attempt in range(50):
        g_nx = nx.random_regular_graph(degree, n, seed=None if rng_seed is None else rng_seed + attempt)
        if nx.is_connected(g_nx):
            return _finalize(PortLabeledGraph.from_networkx(g_nx))
    raise RuntimeError("failed to sample a connected regular graph after 50 attempts")


def butterfly_like_expander(n: int, seed: Optional[int] = None) -> PortLabeledGraph:
    """A small-diameter sparse graph (union of a cycle and two random matchings).

    Used by the trade-off benchmarks as a stand-in for the bounded-degree
    expanders on which hierarchical schemes shine.
    """
    if n < 4:
        raise ValueError("need at least 4 vertices")
    rng = np.random.default_rng(seed)
    g = cycle_graph(n)
    for _ in range(2):
        perm = rng.permutation(n)
        for i in range(0, n - 1, 2):
            u, v = int(perm[i]), int(perm[i + 1])
            if u != v and not g.has_edge(u, v):
                g.add_edge(u, v)
    return _finalize(g)
