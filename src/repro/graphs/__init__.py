"""Graph substrate for the compact-routing reproduction.

The paper models point-to-point communication networks as finite connected
symmetric digraphs whose vertices are labelled ``1..n`` and whose output
ports at a vertex ``x`` are labelled ``1..deg(x)``.  This subpackage
provides:

* :class:`~repro.graphs.digraph.PortLabeledGraph` — the central graph data
  structure with explicit, mutable port labellings.
* :mod:`repro.graphs.shortest_paths` — BFS based single-source and all-pairs
  distances (vectorised with numpy/scipy for the benchmark-scale graphs),
  shortest-path DAGs, and bounded-length path enumeration (used by the
  matrix-of-constraints verifier).
* :mod:`repro.graphs.generators` — the graph families the paper discusses
  (hypercubes, complete graphs, the Petersen graph, trees, outerplanar
  graphs, unit circular-arc graphs, chordal graphs, grids/tori, random
  graphs) plus the three-level graphs of constraints of Lemma 2.
* :mod:`repro.graphs.properties` — structural predicates (connectivity,
  chordality, outerplanarity, tree/ring recognisers) used to validate the
  generators and to select applicable routing schemes.
"""

from repro.graphs.digraph import Arc, PortLabeledGraph
from repro.graphs.shortest_paths import (
    all_pairs_distances,
    all_shortest_paths,
    bfs_distances,
    bfs_parents,
    bounded_paths,
    distance_matrix,
    eccentricities,
    first_arcs_of_near_shortest_paths,
    near_shortest_budget,
    shortest_path,
    shortest_path_dag,
)
from repro.graphs import generators
from repro.graphs import properties

__all__ = [
    "Arc",
    "PortLabeledGraph",
    "all_pairs_distances",
    "all_shortest_paths",
    "bfs_distances",
    "bfs_parents",
    "bounded_paths",
    "distance_matrix",
    "eccentricities",
    "first_arcs_of_near_shortest_paths",
    "near_shortest_budget",
    "shortest_path",
    "shortest_path_dag",
    "generators",
    "properties",
]
