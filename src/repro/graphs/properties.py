"""Structural predicates on port-labelled graphs.

The upper bounds quoted in Section 1 of the paper apply to specific graph
classes (trees/acyclic graphs, outerplanar graphs, unit circular-arc graphs,
chordal graphs, hypercubes, complete graphs).  The routing-scheme layer uses
these predicates both to validate generator output in the test suite and to
decide which specialised scheme is applicable to a given input graph.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Tuple

import numpy as np

from repro.graphs.digraph import PortLabeledGraph
from repro.graphs.shortest_paths import UNREACHABLE, bfs_distances, distance_matrix

__all__ = [
    "is_connected",
    "connected_components",
    "is_tree",
    "is_cycle",
    "is_complete",
    "is_bipartite",
    "is_hypercube",
    "is_chordal",
    "is_outerplanar",
    "diameter",
    "radius",
    "girth",
    "degree_histogram",
]


def is_connected(graph: PortLabeledGraph) -> bool:
    """Whether the graph is connected (the empty graph counts as connected)."""
    if graph.n == 0:
        return True
    return bool((bfs_distances(graph, 0) != UNREACHABLE).all())


def connected_components(graph: PortLabeledGraph) -> List[List[int]]:
    """Connected components as sorted vertex lists, ordered by smallest vertex."""
    seen = [False] * graph.n
    components: List[List[int]] = []
    for s in range(graph.n):
        if seen[s]:
            continue
        comp = []
        queue = deque([s])
        seen[s] = True
        while queue:
            u = queue.popleft()
            comp.append(u)
            for v in graph.neighbors(u):
                if not seen[v]:
                    seen[v] = True
                    queue.append(v)
        components.append(sorted(comp))
    return components


def is_tree(graph: PortLabeledGraph) -> bool:
    """Whether the graph is a tree (connected and ``m = n - 1``)."""
    return graph.n >= 1 and graph.num_edges == graph.n - 1 and is_connected(graph)


def is_cycle(graph: PortLabeledGraph) -> bool:
    """Whether the graph is a single simple cycle."""
    return (
        graph.n >= 3
        and graph.num_edges == graph.n
        and all(graph.degree(v) == 2 for v in graph.vertices())
        and is_connected(graph)
    )


def is_complete(graph: PortLabeledGraph) -> bool:
    """Whether the graph is the complete graph on its vertex set."""
    n = graph.n
    return graph.num_edges == n * (n - 1) // 2


def is_bipartite(graph: PortLabeledGraph) -> Tuple[bool, Optional[List[int]]]:
    """2-colourability test.

    Returns ``(True, colors)`` with ``colors[v] in {0, 1}`` when bipartite,
    ``(False, None)`` otherwise.
    """
    colors = [-1] * graph.n
    for s in range(graph.n):
        if colors[s] != -1:
            continue
        colors[s] = 0
        queue = deque([s])
        while queue:
            u = queue.popleft()
            for v in graph.neighbors(u):
                if colors[v] == -1:
                    colors[v] = 1 - colors[u]
                    queue.append(v)
                elif colors[v] == colors[u]:
                    return False, None
    return True, colors


def is_hypercube(graph: PortLabeledGraph) -> bool:
    """Whether the graph is isomorphic to a hypercube.

    Fast necessary checks (power-of-two order, ``log2(n)``-regularity,
    connectivity, bipartiteness, correct edge count) are followed by an exact
    isomorphism test against :func:`networkx.hypercube_graph`.  Intended for
    the graph sizes used in the tests and benchmarks (dimension <= 10).
    """
    n = graph.n
    if n == 0 or n & (n - 1):
        return False
    dim = n.bit_length() - 1
    if dim == 0:
        return graph.num_edges == 0
    if any(graph.degree(v) != dim for v in graph.vertices()):
        return False
    if graph.num_edges != n * dim // 2:
        return False
    if not is_connected(graph):
        return False
    bip, _ = is_bipartite(graph)
    if not bip:
        return False
    import networkx as nx

    return bool(nx.is_isomorphic(graph.to_networkx(), nx.hypercube_graph(dim)))


def is_chordal(graph: PortLabeledGraph) -> bool:
    """Chordality test via networkx (maximum cardinality search)."""
    import networkx as nx

    if graph.n == 0:
        return True
    return nx.is_chordal(graph.to_networkx())


def is_outerplanar(graph: PortLabeledGraph) -> bool:
    """Outerplanarity test.

    Uses the classical characterisation: ``G`` is outerplanar iff the graph
    obtained by adding a universal vertex is planar.  Also applies the edge
    bound ``m <= 2n - 3`` as a fast negative filter.
    """
    import networkx as nx

    n = graph.n
    if n <= 3:
        return True
    if graph.num_edges > 2 * n - 3:
        return False
    g_nx = graph.to_networkx()
    apex = n
    g_nx.add_node(apex)
    g_nx.add_edges_from((apex, v) for v in range(n))
    planar, _ = nx.check_planarity(g_nx)
    return bool(planar)


def diameter(graph: PortLabeledGraph) -> int:
    """Diameter (max distance over all pairs); requires a connected graph."""
    if graph.n == 0:
        return 0
    dist = distance_matrix(graph)
    if (dist == UNREACHABLE).any():
        raise ValueError("diameter is undefined on disconnected graphs")
    return int(dist.max())


def radius(graph: PortLabeledGraph) -> int:
    """Radius (min eccentricity); requires a connected graph."""
    if graph.n == 0:
        return 0
    dist = distance_matrix(graph)
    if (dist == UNREACHABLE).any():
        raise ValueError("radius is undefined on disconnected graphs")
    return int(dist.max(axis=1).min())


def girth(graph: PortLabeledGraph) -> Optional[int]:
    """Length of the shortest cycle, or ``None`` for forests.

    BFS from every vertex; a non-tree edge closing at BFS depth ``d`` gives a
    cycle of length at most ``2 d + 1``.
    """
    best: Optional[int] = None
    for s in range(graph.n):
        dist = [UNREACHABLE] * graph.n
        parent = [-1] * graph.n
        dist[s] = 0
        queue = deque([s])
        while queue:
            u = queue.popleft()
            for v in graph.neighbors(u):
                if dist[v] == UNREACHABLE:
                    dist[v] = dist[u] + 1
                    parent[v] = u
                    queue.append(v)
                elif parent[u] != v and parent[v] != u:
                    cycle_len = dist[u] + dist[v] + 1
                    if best is None or cycle_len < best:
                        best = cycle_len
    return best


def degree_histogram(graph: PortLabeledGraph) -> np.ndarray:
    """Histogram ``h[k] =`` number of vertices of degree ``k``."""
    degs = np.asarray(graph.degrees(), dtype=np.int64)
    if len(degs) == 0:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(degs)
