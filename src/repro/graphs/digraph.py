"""Port-labelled symmetric digraphs.

The routing model of Fraigniaud & Gavoille (1996) is defined on finite
connected symmetric digraphs: every edge ``{u, v}`` corresponds to the two
arcs ``(u, v)`` and ``(v, u)``, and the outgoing arcs of a vertex ``x`` are
labelled by the integers ``1 .. deg(x)`` (the *output ports* of ``x``).

Port labellings matter: the paper's complete-graph example (Section 1) shows
that the memory needed to describe a local routing function can change from
``Theta(n log n)`` bits to ``O(log n)`` bits depending only on how the ports
are labelled.  :class:`PortLabeledGraph` therefore stores an explicit,
mutable port assignment per vertex and exposes relabelling primitives used by
the routing schemes and by the adversarial-labelling experiments.

Vertices are labelled ``0 .. n-1`` internally (the paper uses ``1 .. n``;
the off-by-one is irrelevant to every statement and keeps the numpy code
simple).  Port labels follow the paper and are ``1 .. deg(x)``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Arc", "PortLabeledGraph"]


@dataclass(frozen=True, order=True)
class Arc:
    """A directed arc ``tail -> head`` together with its output-port label.

    ``port`` is the label, in ``1 .. deg(tail)``, of the arc among the
    outgoing arcs of ``tail``.  Two arcs compare equal iff tail, head and
    port all coincide.
    """

    tail: int
    head: int
    port: int

    def reversed_endpoints(self) -> Tuple[int, int]:
        """Return ``(head, tail)`` — the endpoints of the symmetric arc."""
        return (self.head, self.tail)


class PortLabeledGraph:
    """A finite symmetric digraph with per-vertex output-port labels.

    Parameters
    ----------
    n:
        Number of vertices; vertices are the integers ``0 .. n-1``.
    edges:
        Optional iterable of undirected edges ``(u, v)``.  Each edge adds the
        two symmetric arcs.  Self-loops and duplicate edges are rejected.

    Notes
    -----
    The port labelling is initialised in insertion order: the ``k``-th
    neighbour added to ``u`` receives port ``k``.  Use
    :meth:`set_port_labeling`, :meth:`relabel_ports`, or
    :meth:`sort_ports_by_neighbor` to install a different labelling.
    """

    def __init__(self, n: int, edges: Optional[Iterable[Tuple[int, int]]] = None) -> None:
        if n < 0:
            raise ValueError(f"number of vertices must be non-negative, got {n}")
        self._n = int(n)
        # _port_of[u][v] = port label of arc (u, v)
        self._port_of: List[Dict[int, int]] = [dict() for _ in range(self._n)]
        # _neighbor_at[u][p] = v such that arc (u, v) has port p
        self._neighbor_at: List[Dict[int, int]] = [dict() for _ in range(self._n)]
        # Lazily built adjacency caches (see adjacency_arrays / csr_adjacency).
        self._adj_arrays: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._csr_cache = None
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _check_vertex(self, u: int) -> int:
        u = int(u)
        if not 0 <= u < self._n:
            raise ValueError(f"vertex {u} out of range [0, {self._n})")
        return u

    def add_edge(self, u: int, v: int) -> None:
        """Add the undirected edge ``{u, v}`` (two symmetric arcs).

        The new arc out of ``u`` gets port ``deg(u)+1`` and symmetrically for
        ``v``.  Raises :class:`ValueError` on self-loops or duplicates.
        """
        u = self._check_vertex(u)
        v = self._check_vertex(v)
        if u == v:
            raise ValueError(f"self-loop at vertex {u} is not allowed")
        if v in self._port_of[u]:
            raise ValueError(f"edge ({u}, {v}) already present")
        pu = len(self._port_of[u]) + 1
        pv = len(self._port_of[v]) + 1
        self._port_of[u][v] = pu
        self._neighbor_at[u][pu] = v
        self._port_of[v][u] = pv
        self._neighbor_at[v][pv] = u
        self._invalidate_adjacency()

    def remove_edge(self, u: int, v: int) -> None:
        """Remove the undirected edge ``{u, v}`` (both symmetric arcs).

        Port labels must stay a bijection onto ``1 .. deg``, so at each
        endpoint the gap left by the removed arc is closed by shifting every
        higher port down by one — the *relative* order of the surviving
        ports is preserved, which keeps the mutation local to the two
        endpoints (other vertices' labellings are untouched, a property the
        churn workload's delta compiler relies on).  Raises
        :class:`ValueError` if the edge is absent.
        """
        u = self._check_vertex(u)
        v = self._check_vertex(v)
        if v not in self._port_of[u]:
            raise ValueError(f"edge ({u}, {v}) not present")
        for x, y in ((u, v), (v, u)):
            removed = self._port_of[x].pop(y)
            nbrs = self._neighbor_at[x]
            del nbrs[removed]
            for p in sorted(nbrs):
                if p > removed:
                    w = nbrs.pop(p)
                    nbrs[p - 1] = w
                    self._port_of[x][w] = p - 1
        self._invalidate_adjacency()

    def add_vertex(self) -> int:
        """Append a fresh isolated vertex and return its label."""
        self._port_of.append(dict())
        self._neighbor_at.append(dict())
        self._n += 1
        self._invalidate_adjacency()
        return self._n - 1

    @classmethod
    def from_networkx(cls, nx_graph) -> "PortLabeledGraph":
        """Build a :class:`PortLabeledGraph` from a networkx graph.

        Nodes are relabelled ``0 .. n-1`` following the iteration order of
        ``nx_graph.nodes``.
        """
        nodes = list(nx_graph.nodes)
        index = {node: i for i, node in enumerate(nodes)}
        g = cls(len(nodes))
        for u, v in nx_graph.edges:
            if u == v:
                continue
            g.add_edge(index[u], index[v])
        return g

    def to_networkx(self):
        """Return an undirected :class:`networkx.Graph` with the same edges."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self._n))
        g.add_edges_from(self.edges())
        return g

    def copy(self) -> "PortLabeledGraph":
        """Return a deep copy preserving the port labelling."""
        g = PortLabeledGraph(self._n)
        for u in range(self._n):
            g._port_of[u] = dict(self._port_of[u])
            g._neighbor_at[u] = dict(self._neighbor_at[u])
        return g

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of vertices."""
        return self._n

    def __len__(self) -> int:
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return sum(len(d) for d in self._port_of) // 2

    def vertices(self) -> range:
        """The vertex set as a range ``0 .. n-1``."""
        return range(self._n)

    def degree(self, u: int) -> int:
        """Degree (= number of output ports) of ``u``."""
        return len(self._port_of[self._check_vertex(u)])

    def degrees(self) -> List[int]:
        """Degree sequence indexed by vertex."""
        return [len(d) for d in self._port_of]

    def max_degree(self) -> int:
        """Maximum degree, 0 for an empty graph."""
        return max((len(d) for d in self._port_of), default=0)

    def neighbors(self, u: int) -> List[int]:
        """Neighbours of ``u`` in port order (port 1 first)."""
        u = self._check_vertex(u)
        return [self._neighbor_at[u][p] for p in sorted(self._neighbor_at[u])]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``{u, v}`` is present."""
        u = self._check_vertex(u)
        v = self._check_vertex(v)
        return v in self._port_of[u]

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over undirected edges as ``(u, v)`` with ``u < v``."""
        for u in range(self._n):
            for v in self._port_of[u]:
                if u < v:
                    yield (u, v)

    def arcs(self) -> Iterator[Arc]:
        """Iterate over all directed arcs with their port labels."""
        for u in range(self._n):
            for v, p in self._port_of[u].items():
                yield Arc(u, v, p)

    def out_arcs(self, u: int) -> List[Arc]:
        """Outgoing arcs of ``u`` in port order."""
        u = self._check_vertex(u)
        return [Arc(u, self._neighbor_at[u][p], p) for p in sorted(self._neighbor_at[u])]

    # ------------------------------------------------------------------
    # cached adjacency
    # ------------------------------------------------------------------
    def _invalidate_adjacency(self) -> None:
        """Drop the cached adjacency; called by every mutating operation."""
        self._adj_arrays = None
        self._csr_cache = None

    def adjacency_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Cached CSR-style adjacency ``(indptr, indices)`` in port order.

        ``indices[indptr[u]:indptr[u + 1]]`` lists the neighbours of ``u``
        sorted by output port, so the ``k``-th entry of the slice is the
        neighbour behind port ``k + 1``.  The arrays are built once and
        reused until the graph is mutated (edge/vertex insertion or port
        relabelling); callers must treat them as read-only.  This is the
        backbone of the fast BFS and of :func:`~repro.graphs.shortest_paths.distance_matrix`,
        which previously re-extracted Python edge lists on every call.
        """
        if self._adj_arrays is None:
            degrees = np.fromiter(
                (len(d) for d in self._port_of), count=self._n, dtype=np.int64
            )
            indptr = np.zeros(self._n + 1, dtype=np.int64)
            np.cumsum(degrees, out=indptr[1:])
            indices = np.empty(int(indptr[-1]), dtype=np.int64)
            pos = 0
            for u in range(self._n):
                nbrs = self._neighbor_at[u]
                for p in sorted(nbrs):
                    indices[pos] = nbrs[p]
                    pos += 1
            self._adj_arrays = (indptr, indices)
        return self._adj_arrays

    def csr_adjacency(self):
        """Cached :class:`scipy.sparse.csr_matrix` adjacency (0/1 entries).

        Built from :meth:`adjacency_arrays` without any Python-level edge
        loop and invalidated on mutation; used by the scipy all-pairs
        distance backend.
        """
        if self._csr_cache is None:
            from scipy.sparse import csr_matrix

            indptr, indices = self.adjacency_arrays()
            data = np.ones(indices.shape[0], dtype=np.int8)
            self._csr_cache = csr_matrix(
                (data, indices.astype(np.int32, copy=True), indptr.astype(np.int32, copy=True)),
                shape=(self._n, self._n),
            )
        return self._csr_cache

    # ------------------------------------------------------------------
    # port labelling
    # ------------------------------------------------------------------
    def port(self, u: int, v: int) -> int:
        """Port label of the arc ``(u, v)``.

        Raises :class:`KeyError` if the arc does not exist.
        """
        u = self._check_vertex(u)
        v = self._check_vertex(v)
        try:
            return self._port_of[u][v]
        except KeyError:
            raise KeyError(f"no arc ({u}, {v})") from None

    def neighbor_at_port(self, u: int, p: int) -> int:
        """Vertex reached from ``u`` through output port ``p``.

        Raises :class:`KeyError` if ``p`` is not a valid port of ``u``.
        """
        u = self._check_vertex(u)
        try:
            return self._neighbor_at[u][int(p)]
        except KeyError:
            raise KeyError(f"vertex {u} has no port {p}") from None

    def ports(self, u: int) -> List[int]:
        """Sorted list of the port labels of ``u`` (``1 .. deg(u)``)."""
        u = self._check_vertex(u)
        return sorted(self._neighbor_at[u])

    def port_map(self, u: int) -> Dict[int, int]:
        """Mapping ``port -> neighbour`` for vertex ``u`` (a copy)."""
        u = self._check_vertex(u)
        return dict(self._neighbor_at[u])

    def set_port_labeling(self, u: int, neighbor_to_port: Mapping[int, int]) -> None:
        """Install the port labelling ``neighbor -> port`` at vertex ``u``.

        The mapping must be a bijection from the neighbours of ``u`` onto
        ``{1, .., deg(u)}``; otherwise :class:`ValueError` is raised and the
        graph is left unchanged.
        """
        u = self._check_vertex(u)
        current = set(self._port_of[u])
        if set(neighbor_to_port) != current:
            raise ValueError(
                f"port labelling of vertex {u} must cover exactly its neighbours {sorted(current)}"
            )
        ports = sorted(int(p) for p in neighbor_to_port.values())
        if ports != list(range(1, len(current) + 1)):
            raise ValueError(
                f"port labels of vertex {u} must be a permutation of 1..{len(current)}, got {ports}"
            )
        self._port_of[u] = {int(v): int(p) for v, p in neighbor_to_port.items()}
        self._neighbor_at[u] = {int(p): int(v) for v, p in neighbor_to_port.items()}
        self._invalidate_adjacency()

    def relabel_ports(self, u: int, permutation: Mapping[int, int]) -> None:
        """Apply a permutation ``old_port -> new_port`` to the ports of ``u``."""
        u = self._check_vertex(u)
        old_ports = set(self._neighbor_at[u])
        if set(permutation) != old_ports or set(permutation.values()) != old_ports:
            raise ValueError(
                f"permutation must map the ports of vertex {u} ({sorted(old_ports)}) onto themselves"
            )
        new_map = {int(permutation[p]): v for p, v in self._neighbor_at[u].items()}
        self._neighbor_at[u] = new_map
        self._port_of[u] = {v: p for p, v in new_map.items()}
        self._invalidate_adjacency()

    def sort_ports_by_neighbor(self, u: Optional[int] = None) -> None:
        """Relabel ports so that smaller neighbour labels get smaller ports.

        If ``u`` is ``None`` the canonical labelling is applied to every
        vertex.  This is the "natural" labelling used by most upper-bound
        schemes (e-cube routing, interval routing on trees, ...).
        """
        targets: Sequence[int] = range(self._n) if u is None else [self._check_vertex(u)]
        for x in targets:
            ordered = sorted(self._port_of[x])
            mapping = {v: i + 1 for i, v in enumerate(ordered)}
            self.set_port_labeling(x, mapping)

    def fingerprint(self) -> str:
        """Stable hex digest of the graph *including its port labelling*.

        Two graphs have equal fingerprints exactly when they compare equal
        (:meth:`__eq__`): same vertex count, same edges, same port labels.
        Unlike :meth:`__hash__` the digest is independent of the process
        hash seed, so it is safe as an on-disk cache key
        (:mod:`repro.analysis.runner`) and as a pin in regression tests —
        a generator or registry change that silently produces a different
        instance changes the fingerprint.
        """
        digest = hashlib.sha256()
        digest.update(f"n={self._n}".encode())
        for u in range(self._n):
            digest.update(b"|")
            for v, p in sorted(self._port_of[u].items()):
                digest.update(f"{v}:{p},".encode())
        return digest.hexdigest()

    def check_port_consistency(self) -> None:
        """Validate internal invariants; raise :class:`AssertionError` on failure.

        Invariants: symmetry of arcs, ports of ``u`` = ``{1..deg(u)}``, and
        the two internal maps being mutually inverse.
        """
        for u in range(self._n):
            ports = sorted(self._neighbor_at[u])
            assert ports == list(range(1, len(self._port_of[u]) + 1)), (
                f"vertex {u}: ports {ports} are not 1..deg"
            )
            for v, p in self._port_of[u].items():
                assert self._neighbor_at[u][p] == v, f"inconsistent maps at vertex {u}"
                assert u in self._port_of[v], f"arc ({u},{v}) has no symmetric arc"

    # ------------------------------------------------------------------
    # dunder helpers
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PortLabeledGraph(n={self._n}, m={self.num_edges})"

    def __eq__(self, other: object) -> bool:
        """Equality of vertex set, edge set *and* port labellings."""
        if not isinstance(other, PortLabeledGraph):
            return NotImplemented
        return self._n == other._n and self._port_of == other._port_of

    def __hash__(self) -> int:
        items = tuple(tuple(sorted(d.items())) for d in self._port_of)
        return hash((self._n, items))
