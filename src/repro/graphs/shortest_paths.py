"""Shortest paths, distances and bounded-length path enumeration.

Routing in the paper is measured against shortest-path distances: the stretch
factor of a routing function is the maximum, over source/destination pairs,
of ``(routing path length) / (distance)``.  Checking that a matrix is a
matrix of constraints at stretch ``s`` also requires knowing, for every
constrained pair ``(a, b)``, the *set of first arcs* of all paths from ``a``
to ``b`` of length at most ``s * d(a, b)``.

This module provides:

* plain BFS (:func:`bfs_distances`, :func:`bfs_parents`) for single sources,
* a vectorised all-pairs distance matrix (:func:`distance_matrix`) backed by
  :func:`scipy.sparse.csgraph.shortest_path` for large instances with a pure
  Python fallback,
* shortest-path extraction and enumeration
  (:func:`shortest_path`, :func:`all_shortest_paths`,
  :func:`shortest_path_dag`),
* bounded-length simple path enumeration (:func:`bounded_paths`) and the
  derived :func:`first_arcs_of_near_shortest_paths` used by the
  matrix-of-constraints verifier.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.graphs.digraph import Arc, PortLabeledGraph

__all__ = [
    "bfs_distances",
    "bfs_parents",
    "distance_matrix",
    "all_pairs_distances",
    "eccentricities",
    "shortest_path",
    "all_shortest_paths",
    "shortest_path_dag",
    "bounded_paths",
    "first_arcs_of_near_shortest_paths",
]

#: Distance value used for unreachable pairs in integer distance arrays.
UNREACHABLE = -1


def bfs_distances(graph: PortLabeledGraph, source: int) -> np.ndarray:
    """Return the array of BFS distances from ``source``.

    Unreachable vertices get :data:`UNREACHABLE` (= -1).
    """
    n = graph.n
    dist = np.full(n, UNREACHABLE, dtype=np.int64)
    dist[source] = 0
    queue: deque[int] = deque([source])
    while queue:
        u = queue.popleft()
        du = dist[u]
        for v in graph.neighbors(u):
            if dist[v] == UNREACHABLE:
                dist[v] = du + 1
                queue.append(v)
    return dist


def bfs_parents(graph: PortLabeledGraph, source: int) -> Tuple[np.ndarray, np.ndarray]:
    """BFS distances and a parent array encoding one shortest-path tree.

    Returns ``(dist, parent)`` where ``parent[source] = source`` and
    ``parent[v] = -1`` for unreachable ``v``.
    """
    n = graph.n
    dist = np.full(n, UNREACHABLE, dtype=np.int64)
    parent = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    parent[source] = source
    queue: deque[int] = deque([source])
    while queue:
        u = queue.popleft()
        du = dist[u]
        for v in graph.neighbors(u):
            if dist[v] == UNREACHABLE:
                dist[v] = du + 1
                parent[v] = u
                queue.append(v)
    return dist, parent


def distance_matrix(graph: PortLabeledGraph, backend: str = "auto") -> np.ndarray:
    """All-pairs distance matrix of the graph.

    Parameters
    ----------
    graph:
        The graph.
    backend:
        ``"scipy"`` uses :func:`scipy.sparse.csgraph.shortest_path` (BFS on an
        unweighted CSR adjacency), ``"python"`` runs one BFS per source, and
        ``"auto"`` (default) selects scipy for graphs with at least 64
        vertices.

    Returns
    -------
    numpy.ndarray
        ``(n, n)`` int64 matrix; unreachable pairs hold :data:`UNREACHABLE`.
    """
    n = graph.n
    if n == 0:
        return np.zeros((0, 0), dtype=np.int64)
    if backend not in ("auto", "scipy", "python"):
        raise ValueError(f"unknown backend {backend!r}")
    use_scipy = backend == "scipy" or (backend == "auto" and n >= 64)
    if use_scipy:
        return _distance_matrix_scipy(graph)
    return np.vstack([bfs_distances(graph, s) for s in range(n)])


def _distance_matrix_scipy(graph: PortLabeledGraph) -> np.ndarray:
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import shortest_path as _sp

    n = graph.n
    rows: List[int] = []
    cols: List[int] = []
    for u, v in graph.edges():
        rows.append(u)
        cols.append(v)
        rows.append(v)
        cols.append(u)
    data = np.ones(len(rows), dtype=np.int8)
    adj = csr_matrix((data, (rows, cols)), shape=(n, n))
    dist = _sp(adj, method="D", unweighted=True, directed=False)
    out = np.full((n, n), UNREACHABLE, dtype=np.int64)
    finite = np.isfinite(dist)
    out[finite] = dist[finite].astype(np.int64)
    return out


def all_pairs_distances(graph: PortLabeledGraph) -> np.ndarray:
    """Alias of :func:`distance_matrix` with the automatic backend."""
    return distance_matrix(graph, backend="auto")


def eccentricities(graph: PortLabeledGraph, dist: Optional[np.ndarray] = None) -> np.ndarray:
    """Eccentricity of every vertex (max finite distance to any other vertex).

    Disconnected graphs raise :class:`ValueError` because eccentricity is
    undefined there.
    """
    if dist is None:
        dist = distance_matrix(graph)
    if graph.n and (dist == UNREACHABLE).any():
        raise ValueError("eccentricities are only defined on connected graphs")
    if graph.n == 0:
        return np.zeros(0, dtype=np.int64)
    return dist.max(axis=1)


def shortest_path(graph: PortLabeledGraph, source: int, target: int) -> Optional[List[int]]:
    """One shortest path from ``source`` to ``target`` as a vertex list.

    Returns ``None`` when ``target`` is unreachable.  ``source == target``
    yields the single-vertex path ``[source]``.
    """
    dist, parent = bfs_parents(graph, source)
    if dist[target] == UNREACHABLE:
        return None
    path = [target]
    while path[-1] != source:
        path.append(int(parent[path[-1]]))
    path.reverse()
    return path


def shortest_path_dag(graph: PortLabeledGraph, source: int) -> List[List[int]]:
    """Predecessor lists of the shortest-path DAG rooted at ``source``.

    ``preds[v]`` contains every neighbour ``u`` of ``v`` with
    ``d(source, u) + 1 == d(source, v)``; following predecessors from any
    vertex back to ``source`` enumerates exactly the shortest paths.
    """
    dist = bfs_distances(graph, source)
    preds: List[List[int]] = [[] for _ in range(graph.n)]
    for v in range(graph.n):
        if dist[v] <= 0:
            continue
        for u in graph.neighbors(v):
            if dist[u] == dist[v] - 1:
                preds[v].append(u)
    return preds


def all_shortest_paths(
    graph: PortLabeledGraph, source: int, target: int, limit: Optional[int] = None
) -> List[List[int]]:
    """Every shortest path from ``source`` to ``target``.

    Parameters
    ----------
    limit:
        Optional cap on the number of returned paths (the enumeration stops
        early once the cap is reached).

    Returns
    -------
    list of vertex lists, empty when ``target`` is unreachable.
    """
    dist = bfs_distances(graph, source)
    if dist[target] == UNREACHABLE:
        return []
    if source == target:
        return [[source]]
    preds = shortest_path_dag(graph, source)
    out: List[List[int]] = []

    def _walk(v: int, suffix: List[int]) -> bool:
        if v == source:
            out.append([source] + suffix)
            return limit is not None and len(out) >= limit
        for u in preds[v]:
            if _walk(u, [v] + suffix):
                return True
        return False

    _walk(target, [])
    return out


def bounded_paths(
    graph: PortLabeledGraph,
    source: int,
    target: int,
    max_length: int,
    simple: bool = True,
    limit: Optional[int] = None,
) -> List[List[int]]:
    """All paths from ``source`` to ``target`` of length at most ``max_length``.

    Length is counted in edges.  With ``simple=True`` (default) vertices are
    not repeated, which is sufficient for stretch analysis because any
    walk can be shortened to a simple path of no greater length.  A
    distance-to-target pruning bound keeps the enumeration tractable on the
    constraint graphs of Lemma 2.

    Parameters
    ----------
    limit:
        Optional cap on the number of returned paths.
    """
    if max_length < 0:
        return []
    if source == target:
        return [[source]]
    dist_to_target = bfs_distances(graph, target)
    if dist_to_target[source] == UNREACHABLE or dist_to_target[source] > max_length:
        return []
    out: List[List[int]] = []
    path = [source]
    on_path: Set[int] = {source}

    def _dfs(u: int, remaining: int) -> bool:
        for v in graph.neighbors(u):
            if v == target:
                out.append(path + [target])
                if limit is not None and len(out) >= limit:
                    return True
                continue
            if remaining <= 1:
                continue
            if simple and v in on_path:
                continue
            d = dist_to_target[v]
            if d == UNREACHABLE or d > remaining - 1:
                continue
            path.append(v)
            on_path.add(v)
            stop = _dfs(v, remaining - 1)
            on_path.discard(v)
            path.pop()
            if stop:
                return True
        return False

    _dfs(source, max_length)
    return out


def first_arcs_of_near_shortest_paths(
    graph: PortLabeledGraph,
    source: int,
    target: int,
    stretch: float,
    dist: Optional[np.ndarray] = None,
    strict: bool = False,
) -> Set[Arc]:
    """Set of first arcs of the paths from ``source`` to ``target`` within stretch.

    A path of length ``L`` is admissible when ``L <= stretch * d(source,
    target)`` (or ``L < stretch * d`` when ``strict`` is true, matching the
    paper's "stretch factor < 2" statements where the budget is an open
    bound).  The returned arcs carry the *current* port labelling of the
    graph.

    This is the semantic core of Definition 1: a matrix of constraints pins
    the first arc whenever this set is a singleton for the pair.

    Parameters
    ----------
    dist:
        Optional precomputed distance row ``d(source, .)`` to avoid a BFS.
    """
    if source == target:
        raise ValueError("first arcs are undefined for source == target")
    if dist is None:
        dist = bfs_distances(graph, source)
    d = int(dist[target])
    if d == UNREACHABLE:
        return set()
    budget = stretch * d
    max_len = int(np.floor(budget))
    if strict and max_len == budget:
        max_len -= 1
    arcs: Set[Arc] = set()
    for path in bounded_paths(graph, source, target, max_len):
        head = path[1]
        arcs.add(Arc(source, head, graph.port(source, head)))
    return arcs
