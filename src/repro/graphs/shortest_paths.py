"""Shortest paths, distances and bounded-length path enumeration.

Routing in the paper is measured against shortest-path distances: the stretch
factor of a routing function is the maximum, over source/destination pairs,
of ``(routing path length) / (distance)``.  Checking that a matrix is a
matrix of constraints at stretch ``s`` also requires knowing, for every
constrained pair ``(a, b)``, the *set of first arcs* of all paths from ``a``
to ``b`` of length at most ``s * d(a, b)``.

This module provides:

* plain BFS (:func:`bfs_distances`, :func:`bfs_parents`) for single sources,
* a vectorised all-pairs distance matrix (:func:`distance_matrix`) backed by
  :func:`scipy.sparse.csgraph.shortest_path` for large instances with a pure
  Python fallback,
* shortest-path extraction and enumeration
  (:func:`shortest_path`, :func:`all_shortest_paths`,
  :func:`shortest_path_dag`),
* bounded-length simple path enumeration (:func:`bounded_paths`) and the
  derived :func:`first_arcs_of_near_shortest_paths` used by the
  matrix-of-constraints verifier.

Performance notes
-----------------
``first_arcs_of_near_shortest_paths`` defaults to ``method="bfs"``, an exact
oracle that never enumerates paths.  Any walk shortens to a simple path of no
greater length, so the admissible *simple* paths from ``s`` to ``t`` starting
with the arc ``(s, v)`` are governed by the distance from ``v`` to ``t`` in
the graph with ``s`` removed: the arc is a first arc of an admissible path
iff ``1 + d_{G - s}(v, t) <= max_len``.  Two refinements keep this at one
BFS from the target per pair in the common case:

* ``d_{G - s}(v, t) = d(v, t)`` whenever ``d(v, t) <= d(s, t)`` — a path
  through ``s`` would cost at least ``1 + d(s, t) > d(v, t)`` — so a single
  BFS from the target (shared by *all* sources, see
  :func:`repro.constraints.verifier.forced_first_arcs`) settles those arcs;
* a neighbour ``v`` of ``s`` has ``d(v, t) <= d(s, t) + 1``, so only the
  ``d(v, t) = d(s, t) + 1`` stragglers — and only when the budget admits a
  detour of two extra hops, which never happens at stretch < 2 over
  distance-2 pairs as in the Lemma 2 graphs — require the exact
  ``G - s`` BFS, one per pair.

The legacy exponential enumeration survives as ``method="enumerate"`` and is
cross-checked bit-for-bit against the oracle by the test-suite.  BFS itself
runs on the cached CSR adjacency of :class:`~repro.graphs.digraph.PortLabeledGraph`
instead of per-call dict traversals.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.graphs.digraph import Arc, PortLabeledGraph

__all__ = [
    "bfs_distances",
    "bfs_parents",
    "distance_matrix",
    "all_pairs_distances",
    "eccentricities",
    "shortest_path",
    "all_shortest_paths",
    "shortest_path_dag",
    "bounded_paths",
    "near_shortest_budget",
    "first_arcs_of_near_shortest_paths",
]

#: Distance value used for unreachable pairs in integer distance arrays.
UNREACHABLE = -1


def bfs_distances(
    graph: PortLabeledGraph, source: int, excluded: Optional[int] = None
) -> np.ndarray:
    """Return the array of BFS distances from ``source``.

    Unreachable vertices get :data:`UNREACHABLE` (= -1).  When ``excluded``
    is given, that vertex is treated as deleted (its distance stays
    :data:`UNREACHABLE` and no path may pass through it) — this is the
    ``G - s`` oracle used by :func:`first_arcs_of_near_shortest_paths`.

    Runs on the graph's cached adjacency arrays, so repeated BFS sweeps do
    not pay the per-call neighbour-dict traversal of the naive version.
    """
    n = graph.n
    indptr, indices = graph.adjacency_arrays()
    dist = np.full(n, UNREACHABLE, dtype=np.int64)
    if excluded is not None and excluded == source:
        return dist  # the source itself is deleted: nothing is reachable
    dist[source] = 0
    queue: deque[int] = deque([source])
    while queue:
        u = queue.popleft()
        du = dist[u]
        for v in indices[indptr[u] : indptr[u + 1]]:
            if dist[v] == UNREACHABLE and v != excluded:
                dist[v] = du + 1
                queue.append(int(v))
    return dist


def bfs_parents(graph: PortLabeledGraph, source: int) -> Tuple[np.ndarray, np.ndarray]:
    """BFS distances and a parent array encoding one shortest-path tree.

    Returns ``(dist, parent)`` where ``parent[source] = source`` and
    ``parent[v] = -1`` for unreachable ``v``.
    """
    n = graph.n
    indptr, indices = graph.adjacency_arrays()
    dist = np.full(n, UNREACHABLE, dtype=np.int64)
    parent = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    parent[source] = source
    queue: deque[int] = deque([source])
    while queue:
        u = queue.popleft()
        du = dist[u]
        for v in indices[indptr[u] : indptr[u + 1]]:
            if dist[v] == UNREACHABLE:
                dist[v] = du + 1
                parent[v] = u
                queue.append(int(v))
    return dist, parent


def distance_matrix(graph: PortLabeledGraph, backend: str = "auto") -> np.ndarray:
    """All-pairs distance matrix of the graph.

    Parameters
    ----------
    graph:
        The graph.
    backend:
        ``"scipy"`` uses :func:`scipy.sparse.csgraph.shortest_path` (BFS on an
        unweighted CSR adjacency), ``"python"`` runs one BFS per source, and
        ``"auto"`` (default) selects scipy for graphs with at least 64
        vertices.

    Returns
    -------
    numpy.ndarray
        ``(n, n)`` int64 matrix; unreachable pairs hold :data:`UNREACHABLE`.
    """
    n = graph.n
    if n == 0:
        return np.zeros((0, 0), dtype=np.int64)
    if backend not in ("auto", "scipy", "python"):
        raise ValueError(f"unknown backend {backend!r}")
    use_scipy = backend == "scipy" or (backend == "auto" and n >= 64)
    if use_scipy:
        return _distance_matrix_scipy(graph)
    return np.vstack([bfs_distances(graph, s) for s in range(n)])


def _distance_matrix_scipy(graph: PortLabeledGraph) -> np.ndarray:
    from scipy.sparse.csgraph import shortest_path as _sp

    n = graph.n
    # The CSR adjacency is cached on the graph: repeated distance_matrix
    # calls (the verifier, the stretch analysis, the benchmarks) no longer
    # re-extract Python edge lists per call.
    adj = graph.csr_adjacency()
    dist = _sp(adj, method="D", unweighted=True, directed=False)
    out = np.full((n, n), UNREACHABLE, dtype=np.int64)
    finite = np.isfinite(dist)
    out[finite] = dist[finite].astype(np.int64)
    return out


#: Compatibility alias: :func:`distance_matrix` is the one documented
#: entry point for all-pairs distances (all internal callers use it and
#: grid sweeps cache its result, see
#: :func:`repro.analysis.runner.cached_distance_matrix`).  The old name is
#: kept as a true alias so existing imports keep working — and gain the
#: ``backend`` parameter.
all_pairs_distances = distance_matrix


def eccentricities(graph: PortLabeledGraph, dist: Optional[np.ndarray] = None) -> np.ndarray:
    """Eccentricity of every vertex (max finite distance to any other vertex).

    Disconnected graphs raise :class:`ValueError` because eccentricity is
    undefined there.
    """
    if dist is None:
        dist = distance_matrix(graph)
    if graph.n and (dist == UNREACHABLE).any():
        raise ValueError("eccentricities are only defined on connected graphs")
    if graph.n == 0:
        return np.zeros(0, dtype=np.int64)
    return dist.max(axis=1)


def shortest_path(graph: PortLabeledGraph, source: int, target: int) -> Optional[List[int]]:
    """One shortest path from ``source`` to ``target`` as a vertex list.

    Returns ``None`` when ``target`` is unreachable.  ``source == target``
    yields the single-vertex path ``[source]``.
    """
    dist, parent = bfs_parents(graph, source)
    if dist[target] == UNREACHABLE:
        return None
    path = [target]
    while path[-1] != source:
        path.append(int(parent[path[-1]]))
    path.reverse()
    return path


def shortest_path_dag(graph: PortLabeledGraph, source: int) -> List[List[int]]:
    """Predecessor lists of the shortest-path DAG rooted at ``source``.

    ``preds[v]`` contains every neighbour ``u`` of ``v`` with
    ``d(source, u) + 1 == d(source, v)``; following predecessors from any
    vertex back to ``source`` enumerates exactly the shortest paths.
    """
    dist = bfs_distances(graph, source)
    indptr, indices = graph.adjacency_arrays()
    preds: List[List[int]] = [[] for _ in range(graph.n)]
    for v in range(graph.n):
        if dist[v] <= 0:
            continue
        for u in indices[indptr[v] : indptr[v + 1]]:
            if dist[u] == dist[v] - 1:
                preds[v].append(int(u))
    return preds


def all_shortest_paths(
    graph: PortLabeledGraph, source: int, target: int, limit: Optional[int] = None
) -> List[List[int]]:
    """Every shortest path from ``source`` to ``target``.

    Parameters
    ----------
    limit:
        Optional cap on the number of returned paths (the enumeration stops
        early once the cap is reached).

    Returns
    -------
    list of vertex lists, empty when ``target`` is unreachable.
    """
    dist = bfs_distances(graph, source)
    if dist[target] == UNREACHABLE:
        return []
    if source == target:
        return [[source]]
    preds = shortest_path_dag(graph, source)
    out: List[List[int]] = []

    def _walk(v: int, suffix: List[int]) -> bool:
        if v == source:
            out.append([source] + suffix)
            return limit is not None and len(out) >= limit
        for u in preds[v]:
            if _walk(u, [v] + suffix):
                return True
        return False

    _walk(target, [])
    return out


def bounded_paths(
    graph: PortLabeledGraph,
    source: int,
    target: int,
    max_length: int,
    simple: bool = True,
    limit: Optional[int] = None,
) -> List[List[int]]:
    """All paths from ``source`` to ``target`` of length at most ``max_length``.

    Length is counted in edges.  With ``simple=True`` (default) vertices are
    not repeated, which is sufficient for stretch analysis because any
    walk can be shortened to a simple path of no greater length.  A
    distance-to-target pruning bound keeps the enumeration tractable on the
    constraint graphs of Lemma 2.

    Parameters
    ----------
    limit:
        Optional cap on the number of returned paths.
    """
    if max_length < 0:
        return []
    if source == target:
        return [[source]]
    dist_to_target = bfs_distances(graph, target)
    if dist_to_target[source] == UNREACHABLE or dist_to_target[source] > max_length:
        return []
    out: List[List[int]] = []
    path = [source]
    on_path: Set[int] = {source}
    indptr, indices = graph.adjacency_arrays()

    def _dfs(u: int, remaining: int) -> bool:
        for v in indices[indptr[u] : indptr[u + 1]]:
            v = int(v)
            if v == target:
                out.append(path + [target])
                if limit is not None and len(out) >= limit:
                    return True
                continue
            if remaining <= 1:
                continue
            if simple and v in on_path:
                continue
            d = dist_to_target[v]
            if d == UNREACHABLE or d > remaining - 1:
                continue
            path.append(v)
            on_path.add(v)
            stop = _dfs(v, remaining - 1)
            on_path.discard(v)
            path.pop()
            if stop:
                return True
        return False

    _dfs(source, max_length)
    return out


def near_shortest_budget(d: int, stretch: float, strict: bool = False) -> int:
    """Maximum admissible path length for a pair at distance ``d``.

    ``floor(stretch * d)``, minus one when ``strict`` is true and the budget
    is attained exactly (the paper's open-bound "stretch factor < s").
    """
    budget = stretch * d
    max_len = int(np.floor(budget))
    if strict and max_len == budget:
        max_len -= 1
    return max_len


def first_arcs_of_near_shortest_paths(
    graph: PortLabeledGraph,
    source: int,
    target: int,
    stretch: float,
    dist: Optional[np.ndarray] = None,
    strict: bool = False,
    method: str = "bfs",
    dist_to_target: Optional[np.ndarray] = None,
) -> Set[Arc]:
    """Set of first arcs of the paths from ``source`` to ``target`` within stretch.

    A path of length ``L`` is admissible when ``L <= stretch * d(source,
    target)`` (or ``L < stretch * d`` when ``strict`` is true, matching the
    paper's "stretch factor < 2" statements where the budget is an open
    bound).  The returned arcs carry the *current* port labelling of the
    graph.

    This is the semantic core of Definition 1: a matrix of constraints pins
    the first arc whenever this set is a singleton for the pair.

    Parameters
    ----------
    dist:
        Optional precomputed distance row ``d(source, .)``.  With
        ``method="enumerate"`` it avoids the BFS entirely; with
        ``method="bfs"`` it only short-circuits unreachable targets — the
        oracle needs distances *to* the target, so pass ``dist_to_target``
        to amortise that sweep instead.
    method:
        ``"bfs"`` (default) decides each candidate arc from distances alone
        — exact, polynomial, and the only practical choice beyond toy sizes
        (see the module docstring for the walk-shortening argument).
        ``"enumerate"`` is the legacy bounded-length path enumeration, kept
        as a cross-check fallback; both return identical sets.
    dist_to_target:
        Optional precomputed distance row ``d(., target)`` (``method="bfs"``
        only).  Passing it amortises the one BFS from the target across all
        sources, as :func:`repro.constraints.verifier.forced_first_arcs` does.
    """
    if source == target:
        raise ValueError("first arcs are undefined for source == target")
    if method not in ("bfs", "enumerate"):
        raise ValueError(f"unknown method {method!r}")

    if method == "enumerate":
        if dist is None:
            dist = bfs_distances(graph, source)
        d = int(dist[target])
        if d == UNREACHABLE:
            return set()
        max_len = near_shortest_budget(d, stretch, strict)
        arcs: Set[Arc] = set()
        for path in bounded_paths(graph, source, target, max_len):
            head = path[1]
            arcs.add(Arc(source, head, graph.port(source, head)))
        return arcs

    if dist_to_target is None:
        if dist is not None and int(dist[target]) == UNREACHABLE:
            return set()
        dist_to_target = bfs_distances(graph, target)
    d = int(dist_to_target[source])
    if d == UNREACHABLE:
        return set()
    max_len = near_shortest_budget(d, stretch, strict)
    if max_len < d:
        return set()

    indptr, indices = graph.adjacency_arrays()
    arcs = set()
    ambiguous: List[int] = []
    for offset, v in enumerate(indices[indptr[source] : indptr[source + 1]]):
        v = int(v)
        port = offset + 1
        if v == target:
            # The one-arc path; admissible since max_len >= d = 1.
            arcs.add(Arc(source, v, port))
            continue
        dv = int(dist_to_target[v])
        if dv == UNREACHABLE or 1 + dv > max_len:
            continue
        if dv <= d:
            # Some shortest v -> target path avoids the source (any path
            # through it costs >= 1 + d > dv), so a simple admissible path
            # source -> v -> ... -> target exists.
            arcs.add(Arc(source, v, port))
        else:
            # dv == d + 1: the cheap certificate may route back through the
            # source; settle with the exact G - source distance below.
            ambiguous.append(v)
    if ambiguous:
        dist_excl = bfs_distances(graph, target, excluded=source)
        for v in ambiguous:
            dv = int(dist_excl[v])
            if dv != UNREACHABLE and 1 + dv <= max_len:
                arcs.add(Arc(source, v, graph.port(source, v)))
    return arcs
