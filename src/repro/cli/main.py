"""Argument wiring for the ``repro`` console entry point.

Each sweep subcommand builds the same family-major payload list as its
:class:`~repro.analysis.runner.ShardedRunner` counterpart and drives the
*same* top-level cell workers — serially in-process for ``--jobs 1``,
through a :class:`~concurrent.futures.ProcessPoolExecutor` with
``chunksize=1`` otherwise — so CLI rows are field-for-field the Python
API's results, just streamed as they complete instead of returned at the
end.  All caching goes through one :class:`~repro.analysis.runner.\
ExperimentCache` rooted at the resolved store directory, which makes every
invocation share the content-addressed program store.

Exit codes: ``0`` success, ``1`` a ``--check`` found failing cells,
``2`` invalid usage (unknown scheme/family/flag).
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.cli._output import emit, emit_error
from repro.store import ProgramStore, default_store_root

EXIT_OK = 0
EXIT_CHECK_FAILED = 1
EXIT_USAGE = 2

#: Demand models flow/resilience accept (see repro.analysis.flow.demand_matrix).
DEMAND_MODELS = ("uniform", "zipf", "gravity")


def _add_store_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="artifact store root (default: $REPRO_STORE or ~/.cache/repro)",
    )


def _add_sweep_flags(parser: argparse.ArgumentParser) -> None:
    _add_store_flag(parser)
    parser.add_argument(
        "--registry",
        choices=("small", "medium"),
        default="small",
        help="graph-family size class (default: small)",
    )
    parser.add_argument(
        "--scheme",
        action="append",
        default=None,
        metavar="NAME",
        help="restrict to this scheme (repeatable; default: whole registry)",
    )
    parser.add_argument(
        "--family",
        action="append",
        default=None,
        metavar="NAME",
        help="restrict to this graph family (repeatable; default: all)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N", help="worker processes (default: 1)"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="registry instance seed (default: 0)"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Compact-routing experiment driver: every subcommand streams one "
            "JSON object per cell to stdout (JSONL). See docs/cli.md."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="compile registry cells into the store")
    _add_sweep_flags(p)

    p = sub.add_parser("sweep", help="compile and execute every registry cell")
    _add_sweep_flags(p)

    p = sub.add_parser("simulate", help="full conformance suite (engine-executed)")
    _add_sweep_flags(p)

    p = sub.add_parser("verify", help="statically verify every registry cell")
    _add_sweep_flags(p)
    p.add_argument(
        "--check",
        action="store_true",
        help="exit 1 if any verified cell fails to deliver everywhere",
    )

    p = sub.add_parser("resilience", help="fault-injection sweep (masked programs)")
    _add_sweep_flags(p)
    p.add_argument(
        "--edge-k", type=int, action="append", default=None, metavar="K",
        help="edge-failure count (repeatable; default: 1 2 4)",
    )
    p.add_argument(
        "--node-k", type=int, action="append", default=None, metavar="K",
        help="node-failure count (repeatable; default: 1 2)",
    )
    p.add_argument(
        "--per-k", type=int, default=2, metavar="N",
        help="independent seeded draws per k (default: 2)",
    )
    p.add_argument(
        "--flow", choices=DEMAND_MODELS, default=None,
        help="add demand-weighted traffic metrics under this model",
    )
    p.add_argument("--demand-seed", type=int, default=0, help="demand-draw seed")

    p = sub.add_parser("churn", help="incremental-delta sweep over churn traces")
    _add_sweep_flags(p)
    p.add_argument(
        "--steps", type=int, default=4, metavar="N",
        help="random-churn trace length (default: 4)",
    )
    p.add_argument(
        "--flips-per-step", type=int, default=1, metavar="N",
        help="edge flips per random-churn step (default: 1)",
    )
    p.add_argument(
        "--no-verify", action="store_true",
        help="skip static verification of each patched program",
    )
    p.add_argument(
        "--flow", choices=DEMAND_MODELS, default=None,
        help="add load-movement metrics under this demand model",
    )
    p.add_argument("--demand-seed", type=int, default=0, help="demand-draw seed")

    p = sub.add_parser("flow", help="traffic/flow sweep over demand models")
    _add_sweep_flags(p)
    p.add_argument(
        "--model", choices=DEMAND_MODELS, action="append", default=None,
        help="demand model (repeatable; default: all three)",
    )
    p.add_argument("--demand-seed", type=int, default=0, help="demand-draw seed")
    p.add_argument(
        "--total", type=float, default=1_000_000.0,
        help="total offered traffic per demand matrix (default: 1e6)",
    )

    p = sub.add_parser("store", help="inspect or garbage-collect the artifact store")
    store_sub = p.add_subparsers(dest="store_command", required=True)
    p = store_sub.add_parser("ls", help="one JSONL row per live manifest record")
    _add_store_flag(p)
    p = store_sub.add_parser("info", help="one JSONL row of store totals")
    _add_store_flag(p)
    p = store_sub.add_parser("gc", help="evict orphans, then LRU down to --max-bytes")
    _add_store_flag(p)
    p.add_argument(
        "--max-bytes", type=int, default=None, metavar="N",
        help="object-byte budget to evict down to (default: orphans only)",
    )
    return parser


# ---------------------------------------------------------------------------
def _store_root(args: argparse.Namespace) -> Path:
    """``--store`` > ``$REPRO_STORE`` > ``~/.cache/repro``."""
    if args.store is not None:
        return Path(args.store)
    return default_store_root()


def _registries(
    args: argparse.Namespace,
) -> Tuple[Dict[str, object], Dict[str, object]]:
    from repro.sim.registry import resolve_families, resolve_schemes

    schemes = resolve_schemes(args.scheme, seed=args.seed)
    families = resolve_families(args.family, size=args.registry, seed=args.seed)
    return schemes, families


def _stream_outcomes(
    jobs: int, worker: Callable, payloads: Sequence[tuple]
) -> Iterator[Tuple[tuple, tuple]]:
    """Yield ``(payload, outcome)`` pairs with bounded per-cell delay.

    The serial path calls the worker in-process (its per-directory cache
    persists across cells); the pooled path maps with ``chunksize=1`` so a
    finished cell is never held back behind an unfinished chunk-mate.
    Order is payload order either way — identical to the runner API.
    """
    if jobs <= 1 or len(payloads) <= 1:
        for payload in payloads:
            yield payload, worker(payload)
        return
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        yield from zip(payloads, pool.map(worker, payloads, chunksize=1))


class _Tally:
    """Accumulates per-cell stat deltas into one summary row."""

    def __init__(self, command: str, store_root: Path) -> None:
        self.command = command
        self.store_root = store_root
        self.cells = 0
        self.skipped = 0
        self.hits = 0
        self.misses = 0
        self.compile_hits = 0
        self.compile_misses = 0
        self.degraded = 0

    def absorb(self, outcome: tuple) -> None:
        self.hits += outcome[2]
        self.misses += outcome[3]
        self.compile_hits += outcome[4]
        self.compile_misses += outcome[5]
        self.degraded += outcome[6]

    def summary(self) -> dict:
        lookups = self.compile_hits + self.compile_misses
        return {
            "event": "summary",
            "command": self.command,
            "store": str(self.store_root),
            "cells": self.cells,
            "skipped": self.skipped,
            "hits": self.hits,
            "misses": self.misses,
            "compile_hits": self.compile_hits,
            "compile_misses": self.compile_misses,
            "compile_hit_rate": (self.compile_hits / lookups) if lookups else 0.0,
            "degraded": self.degraded,
        }


def _emit_rows(value: object) -> Iterator[dict]:
    """A cell outcome is one result dataclass or a list of them."""
    if isinstance(value, (list, tuple)):
        for item in value:
            yield dataclasses.asdict(item)
    else:
        yield dataclasses.asdict(value)


def _run_streaming(
    command: str,
    args: argparse.Namespace,
    worker: Callable,
    payloads: Sequence[tuple],
    store_root: Path,
) -> Tuple[int, List[dict]]:
    """Shared sweep loop: stream rows/skips, then the summary; returns rows."""
    tally = _Tally(command, store_root)
    rows: List[dict] = []
    for payload, outcome in _stream_outcomes(args.jobs, worker, payloads):
        tally.absorb(outcome)
        tag, value = outcome[0], outcome[1]
        if tag == "skip":
            tally.skipped += 1
            emit(
                {
                    "event": "skip",
                    "scheme": payload[3],
                    "family": payload[2],
                    "reason": value,
                }
            )
            continue
        for row in _emit_rows(value):
            tally.cells += 1
            rows.append(row)
            emit(row)
    emit(tally.summary())
    return EXIT_OK, rows


def _cell_payloads(
    schemes: Dict[str, object],
    families: Dict[str, object],
    store_root: Path,
    extra: Callable[[str], tuple] = lambda family: (),
) -> List[tuple]:
    """Family-major ``(scheme, graph, family, label, *extra, cache_dir)`` list."""
    return [
        (scheme, graph, family, label) + extra(family) + (str(store_root),)
        for family, graph in families.items()
        for label, scheme in schemes.items()
    ]


# ---------------------------------------------------------------------------
def _cmd_simple_sweep(command: str, args: argparse.Namespace) -> int:
    from repro.analysis import runner as runner_mod

    worker = {
        "compile": runner_mod._compile_cell_worker,
        "sweep": runner_mod._program_cell_worker,
        "simulate": runner_mod._conformance_cell_worker,
        "verify": runner_mod._verify_cell_worker,
    }[command]
    store_root = _store_root(args)
    schemes, families = _registries(args)
    payloads = _cell_payloads(schemes, families, store_root)
    code, rows = _run_streaming(command, args, worker, payloads, store_root)
    if command == "verify" and getattr(args, "check", False):
        failing = [
            row
            for row in rows
            if row.get("verified") and (not row["all_delivered"] or row["issues"])
        ]
        if failing:
            return EXIT_CHECK_FAILED
    return code


def _cmd_resilience(args: argparse.Namespace) -> int:
    from repro.analysis.runner import _resilience_cell_worker
    from repro.sim.registry import fault_scenarios

    store_root = _store_root(args)
    schemes, families = _registries(args)
    edge_ks = tuple(args.edge_k) if args.edge_k else (1, 2, 4)
    node_ks = tuple(args.node_k) if args.node_k else (1, 2)
    scenarios = {
        family: tuple(
            fault_scenarios(
                graph, seed=args.seed, edge_ks=edge_ks, node_ks=node_ks, per_k=args.per_k
            )
        )
        for family, graph in families.items()
    }
    payloads = _cell_payloads(
        schemes,
        families,
        store_root,
        extra=lambda family: (scenarios[family], args.flow, args.demand_seed),
    )
    code, _ = _run_streaming("resilience", args, _resilience_cell_worker, payloads, store_root)
    return code


def _cmd_churn(args: argparse.Namespace) -> int:
    from repro.analysis.runner import _churn_cell_worker
    from repro.sim.churn import churn_scenarios
    from repro.sim.registry import resolve_families, resolve_schemes

    store_root = _store_root(args)
    if args.scheme is None:
        schemes = {
            name: scheme
            for name, scheme in resolve_schemes(None, seed=args.seed).items()
            if name.startswith("tables-")
        }
    else:
        schemes = resolve_schemes(args.scheme, seed=args.seed)
    families = resolve_families(args.family, size=args.registry, seed=args.seed)
    traces = {
        family: tuple(
            churn_scenarios(
                graph,
                seed=args.seed,
                steps=args.steps,
                flips_per_step=args.flips_per_step,
            )
        )
        for family, graph in families.items()
    }
    payloads = _cell_payloads(
        schemes,
        families,
        store_root,
        extra=lambda family: (
            traces[family],
            not args.no_verify,
            args.flow,
            args.demand_seed,
        ),
    )
    code, _ = _run_streaming("churn", args, _churn_cell_worker, payloads, store_root)
    return code


def _cmd_flow(args: argparse.Namespace) -> int:
    from repro.analysis.runner import _flow_cell_worker

    store_root = _store_root(args)
    schemes, families = _registries(args)
    models = tuple(args.model) if args.model else DEMAND_MODELS
    payloads = _cell_payloads(
        schemes,
        families,
        store_root,
        extra=lambda family: (models, args.demand_seed, args.total),
    )
    code, _ = _run_streaming("flow", args, _flow_cell_worker, payloads, store_root)
    return code


def _cmd_store(args: argparse.Namespace) -> int:
    store = ProgramStore(_store_root(args))
    if args.store_command == "ls":
        for record in store.records():
            emit(dataclasses.asdict(record))
    elif args.store_command == "info":
        emit(store.info())
    else:
        stats = store.gc(max_bytes=args.max_bytes)
        row = dataclasses.asdict(stats)
        row["store"] = str(store.root)
        emit(row)
    return EXIT_OK


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command in ("compile", "sweep", "simulate", "verify"):
            return _cmd_simple_sweep(args.command, args)
        if args.command == "resilience":
            return _cmd_resilience(args)
        if args.command == "churn":
            return _cmd_churn(args)
        if args.command == "flow":
            return _cmd_flow(args)
        return _cmd_store(args)
    except KeyError as exc:
        emit_error(str(exc.args[0]) if exc.args else str(exc))
        return EXIT_USAGE
    except BrokenPipeError:
        # Downstream closed the stream early (`repro ... | head`): that is
        # the consumer's prerogative in a JSONL pipeline, not our failure.
        # Detach stdout so interpreter teardown doesn't re-raise on flush.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return EXIT_OK
