"""The ``repro`` console entry point.

One executable operator surface over the whole pipeline: every subcommand
maps onto an existing registry/runner API and streams **one JSON object per
cell to stdout as the cell completes** (JSONL) — the incremental-delay
output discipline that lets a consumer start aggregating a sweep before it
finishes.  All artifacts flow through the content-addressed program store
(:mod:`repro.store`) rooted at ``--store`` / ``$REPRO_STORE`` /
``~/.cache/repro``, so a second invocation against the same store re-uses
every compiled program.

See ``docs/cli.md`` for the full subcommand reference and output schemas,
and :mod:`repro.cli.main` for the argument wiring.
"""

from repro.cli.main import main

__all__ = ["main"]
