"""JSONL emission for the ``repro`` CLI.

Every byte the CLI writes to stdout goes through :func:`emit` — one JSON
object per line, flushed immediately so downstream consumers see cells with
bounded delay rather than at sweep end.  Rows **without** an ``"event"``
key are data cells (their schema is the subcommand's result dataclass);
rows **with** one carry run metadata:

* ``{"event": "skip", ...}`` — a (scheme, family) pair whose build refused
  the graph (partial schemes outside their domain);
* ``{"event": "summary", ...}`` — the final cache/hit-rate accounting;
* ``{"event": "error", ...}`` — an invalid invocation, written to stderr.

`tools/repro_lint.py` rule REP005 enforces the funnel: no bare ``print``
in :mod:`repro.cli`, so no stray non-JSON line can corrupt the stream.
"""

from __future__ import annotations

import dataclasses
import json
import sys
from typing import IO, Optional

import numpy as np


def jsonable(value: object) -> object:
    """Coerce numpy scalars/arrays (and dataclasses) to JSON-native types.

    The ``default=`` hook for :func:`json.dumps`: result dataclasses carry
    ``np.bool_``/``np.int64``/``np.float64`` fields straight out of the
    vectorized kernels, which the stdlib encoder rejects.
    """
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return dataclasses.asdict(value)
    raise TypeError(f"not JSON serializable: {type(value).__name__}")


def emit(row: dict, stream: Optional[IO[str]] = None) -> None:
    """Write one JSONL row (sorted keys, immediate flush)."""
    if stream is None:
        stream = sys.stdout
    stream.write(json.dumps(row, sort_keys=True, default=jsonable) + "\n")
    stream.flush()


def emit_error(message: str) -> None:
    """Write an ``{"event": "error"}`` row to stderr (stdout stays JSONL-pure)."""
    emit({"event": "error", "message": message}, stream=sys.stderr)
