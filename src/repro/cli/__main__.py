"""``python -m repro.cli`` — same surface as the ``repro`` console script."""

import sys

from repro.cli.main import main

if __name__ == "__main__":
    sys.exit(main())
