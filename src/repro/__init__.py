"""repro — reproduction of Fraigniaud & Gavoille (1996).

*Local Memory Requirement of Universal Routing Schemes*, SPAA 1996
(LIP research report RR-1996-01).

The package is organised in five layers (see DESIGN.md):

* :mod:`repro.graphs` — port-labelled symmetric digraphs, shortest paths
  and the graph families the paper discusses;
* :mod:`repro.routing` — the ``R = (I, H, P)`` routing model and the
  universal routing schemes of Table 1 (routing tables, interval routing,
  e-cube, complete-graph labellings, landmark and spanner schemes);
* :mod:`repro.memory` — bit-exact encodings of local routing functions and
  the closed-form memory bounds of Table 1;
* :mod:`repro.constraints` — the paper's contribution: generalized matrices
  and graphs of constraints, the Lemma 1 counting bound, the Lemma 2
  construction, the Figure 1 Petersen instance and the Theorem 1 lower
  bound with its executable reconstruction argument;
* :mod:`repro.sim` — the batched all-pairs routing simulator (compiled
  numpy next-hop matrices with exact livelock detection) and the
  scheme x graph-family conformance harness cross-checked against Table 1;
* :mod:`repro.analysis` — experiment drivers regenerating every table and
  figure of the paper (see EXPERIMENTS.md).

Quick start::

    from repro import generators, ShortestPathTableScheme, memory_profile, stretch_factor

    graph = generators.random_connected_graph(32, seed=1)
    routing = ShortestPathTableScheme().build(graph)
    profile = memory_profile(routing)
    print(profile.local, profile.global_, stretch_factor(routing))
"""

from repro.graphs import PortLabeledGraph, generators, properties
from repro.routing import (
    CowenLandmarkScheme,
    HierarchicalSpannerScheme,
    IntervalRoutingScheme,
    ShortestPathTableScheme,
    TreeIntervalRoutingScheme,
    route,
    stretch_factor,
)
from repro.memory import memory_profile
from repro.sim import (
    ConformanceReport,
    run_conformance_suite,
    simulate_all_pairs,
    simulated_stretch_factor,
)
from repro.constraints import (
    ConstraintMatrix,
    build_constraint_graph,
    enumerate_canonical_matrices,
    lemma1_lower_bound,
    petersen_constraint_matrix,
    theorem1_bound,
    verify_constraint_matrix,
    worst_case_network,
)

__version__ = "1.0.0"

__all__ = [
    "PortLabeledGraph",
    "generators",
    "properties",
    "ShortestPathTableScheme",
    "IntervalRoutingScheme",
    "TreeIntervalRoutingScheme",
    "CowenLandmarkScheme",
    "HierarchicalSpannerScheme",
    "route",
    "stretch_factor",
    "memory_profile",
    "ConformanceReport",
    "run_conformance_suite",
    "simulate_all_pairs",
    "simulated_stretch_factor",
    "ConstraintMatrix",
    "build_constraint_graph",
    "enumerate_canonical_matrices",
    "lemma1_lower_bound",
    "petersen_constraint_matrix",
    "verify_constraint_matrix",
    "theorem1_bound",
    "worst_case_network",
    "__version__",
]
