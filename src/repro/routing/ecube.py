"""E-cube (dimension-order) routing on hypercubes.

Section 1 of the paper quotes ``MEM_local(H, 1) = O(log n)`` for the
hypercube ``H`` of order ``n``: with the natural port labelling (port ``k``
leads to the neighbour differing in bit ``k-1``), the local routing function
of a vertex ``x`` is "XOR the destination with my own label and take the
lowest set bit", which only requires storing the ``log2 n``-bit label of
``x``.  This module provides that scheme both as a routing function (for the
stretch/validity tests) and as a parametric description (for the memory
measurements of experiment E7).
"""

from __future__ import annotations

from typing import Dict, Hashable

from repro.graphs.digraph import PortLabeledGraph
from repro.graphs.properties import is_hypercube
from repro.routing.model import BaseRoutingScheme, DELIVER, DestinationBasedRoutingFunction

__all__ = [
    "ECubeRoutingFunction",
    "ECubeRoutingScheme",
    "MaskECubeRoutingFunction",
    "MaskECubeRoutingScheme",
]


class ECubeRoutingFunction(DestinationBasedRoutingFunction):
    """Dimension-order routing on a hypercube with the canonical port labelling.

    The graph must be the output of
    :func:`repro.graphs.generators.hypercube` (vertex labels are coordinate
    words, port ``k`` flips bit ``k-1``); :class:`ECubeRoutingScheme.build`
    verifies this.
    """

    def __init__(self, graph: PortLabeledGraph, dimension: int) -> None:
        super().__init__(graph)
        self._dimension = dimension

    @property
    def dimension(self) -> int:
        """Hypercube dimension."""
        return self._dimension

    def port_to(self, node: int, dest: int) -> int:
        diff = node ^ dest
        if diff == 0:
            raise ValueError("port_to requires dest != node")
        lowest_bit = (diff & -diff).bit_length() - 1
        return lowest_bit + 1

    def parametric_description_bits(self) -> int:
        """Bits needed to describe the local function: the node label plus O(1).

        This is the quantity behind the ``O(log n)`` entry of Table 1: the
        program "flip the lowest differing bit" is the same at every node and
        only the node's own label varies.
        """
        return max(self._dimension, 1)


class MaskECubeRoutingFunction(ECubeRoutingFunction):
    """Dimension-order routing whose header is the *remaining coordinate mask*.

    The classical wormhole-router formulation of e-cube routing: the source
    attaches ``I(u, v) = u XOR v`` (the set of dimensions still to correct)
    and every hop clears the bit it just corrected — ``P(x, h)`` forwards
    through the lowest set bit of ``h`` and ``H(x, h)`` removes that bit;
    delivery happens when the mask reaches zero.  The invariant
    ``h = x XOR v`` makes the routes (and hence stretch and memory profile)
    identical to :class:`ECubeRoutingFunction`, but the header is genuinely
    *rewritten* at every hop, which makes this the canonical finite-header
    rewriting scheme for the header-compiled simulator path: the reachable
    header alphabet is the set of coordinate masks, so overriding
    ``initial_header``/``next_header`` drops the class off the next-hop
    lowering and ``program_kind()`` resolves to ``"header-state"`` (the
    inherited ``can_vectorize = True`` promise of a finite alphabet).
    """

    def initial_header(self, source: int, dest: int) -> int:
        return source ^ dest

    def port(self, node: int, header: Hashable) -> int:
        mask = int(header)  # type: ignore[call-overload]
        if mask == 0:
            return DELIVER
        return (mask & -mask).bit_length()  # 1 + index of the lowest set bit

    def next_header(self, node: int, header: Hashable) -> int:
        mask = int(header)  # type: ignore[call-overload]
        return mask & (mask - 1)  # clear the bit corrected by this hop


class ECubeRoutingScheme(BaseRoutingScheme):
    """Partial scheme applying to hypercubes with the canonical port labelling."""

    name = "ecube"
    stretch_guarantee = 1.0
    _function_class = ECubeRoutingFunction

    def build(self, graph: PortLabeledGraph) -> ECubeRoutingFunction:
        """Build e-cube routing; raises if the graph is not a canonically labelled hypercube."""
        n = graph.n
        if n == 0 or n & (n - 1):
            raise ValueError("e-cube routing requires 2**d vertices")
        dimension = n.bit_length() - 1
        if not is_hypercube(graph):
            raise ValueError("e-cube routing requires a hypercube")
        # Check the canonical labelling: port k of u must lead to u ^ (1 << (k-1)).
        for u in range(n):
            for k in range(1, dimension + 1):
                if graph.neighbor_at_port(u, k) != u ^ (1 << (k - 1)):
                    raise ValueError(
                        "e-cube routing requires the canonical hypercube port labelling; "
                        "use repro.graphs.generators.hypercube()"
                    )
        return self._function_class(graph, dimension)


class MaskECubeRoutingScheme(ECubeRoutingScheme):
    """E-cube routing in its header-rewriting (remaining-mask) formulation."""

    name = "ecube-mask"
    stretch_guarantee = 1.0
    _function_class = MaskECubeRoutingFunction
