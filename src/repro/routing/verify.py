"""Static verification of compiled routing programs.

A compiled :class:`~repro.routing.program.RoutingProgram` is a closed
functional object: its transition arrays fully determine the fate of every
ordered ``(source, destination)`` pair.  This module proves those fates
*without executing a single message* — the same way a compiler verifies its
IR instead of running it:

* a :class:`NextHopProgram` is, per destination column ``d``, a functional
  graph on nodes (``x -> next_node[x, d]``); every walk either reaches the
  (absorbing) destination, stops at a :data:`MISDELIVER` / :data:`DROPPED`
  sentinel, or enters a cycle;
* a :class:`HeaderStateProgram` is one functional graph on its interned
  ``(node, header)`` states, and every pair's fate is its initial state's.

Both reduce to the same question — *which terminal does each state's walk
reach, and in how many steps?* — answered here by a compacted
pointer-doubling resolution (:func:`_resolve_functional`): ``O(states)``
memory and ``O(states · log(path length))`` work, instead of the executor's
``O(pairs · hops)`` simulation.  The result is a closed-form
:class:`VerificationReport` whose outcome codes and hop counts are
*definitionally equal* to what :func:`repro.sim.engine.simulate_all_pairs` /
:func:`repro.sim.engine.execute_masked_program` would observe (the
differential suite in ``tests/test_verify.py`` pins this across every
registry scheme and graph family).

Verdict codes are numerically identical to the ``PAIR_*`` outcome taxonomy
of :mod:`repro.sim.faults`, so a report's ``outcome`` matrix can be compared
bit-for-bit against :class:`~repro.sim.faults.FaultSimulationResult.outcome`
(this module cannot import :mod:`repro.sim` — the dependency points the
other way — so the equality is pinned by a test, not by sharing names).

Structural corruption (an out-of-range successor, a sentinel that does not
exist, a wrong shape) always raises :class:`ProgramVerificationError` with a
diagnostic naming the first offending entry.  *Semantic* oddities that the
executors handle deterministically — a non-absorbing destination, a stale
``hops_to_deliver`` field — are collected as ``issues`` on the report and
only raise under ``strict=True`` (the cache integrity gate's mode).

Minimal example — prove a compiled program delivers every pair without
executing a single message:

>>> from repro.graphs.generators import path_graph
>>> from repro.routing.tables import ShortestPathTableScheme
>>> from repro.routing.verify import verify_program
>>> program = ShortestPathTableScheme().build(path_graph(5)).compile_program()
>>> report = verify_program(program)
>>> bool(report.all_delivered)
True
>>> int(report.max_finite_hops)
4
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.routing.program import (
    DROPPED,
    KIND_GENERIC,
    KIND_HEADER_STATE,
    KIND_NEXT_HOP,
    MISDELIVER,
    NO_ROUTE,
    GenericProgram,
    HeaderStateProgram,
    NextHopProgram,
    RoutingProgram,
    functional_hops,
)

__all__ = [
    "VERDICT_DELIVERED",
    "VERDICT_DROPPED",
    "VERDICT_LIVELOCKED",
    "VERDICT_MISDELIVERED",
    "VERDICT_INFEASIBLE",
    "VERDICT_NAMES",
    "ProgramVerificationError",
    "VerificationReport",
    "verify_program",
    "verify_structure",
]

# ----------------------------------------------------------------------
# verdict codes
# ----------------------------------------------------------------------
# Numerically equal to repro.sim.faults.PAIR_* on purpose: a verification
# report's outcome matrix and a fault simulation's outcome matrix are the
# same classification computed two ways, and tests compare them with ==.
VERDICT_DELIVERED = 0
VERDICT_DROPPED = 1
VERDICT_LIVELOCKED = 2
VERDICT_MISDELIVERED = 3
VERDICT_INFEASIBLE = 4

VERDICT_NAMES: Dict[int, str] = {
    VERDICT_DELIVERED: "delivered",
    VERDICT_DROPPED: "dropped",
    VERDICT_LIVELOCKED: "livelocked",
    VERDICT_MISDELIVERED: "misdelivered",
    VERDICT_INFEASIBLE: "infeasible",
}


class ProgramVerificationError(ValueError):
    """A compiled program failed static verification.

    Raised for structural corruption always, and for semantic issues (see
    :class:`VerificationReport.issues`) under ``strict=True``.  Subclasses
    :class:`ValueError` so cache-integrity callers can treat a corrupt
    artifact and an unparseable one uniformly.
    """


def _exact_max_ratio(lengths: np.ndarray, dists: np.ndarray) -> Fraction:
    """Exact maximum of ``lengths / dists`` as a :class:`Fraction`.

    Same refinement as the engine's stretch kernel (duplicated here because
    :mod:`repro.routing` must not import :mod:`repro.sim`): the float argmax
    is sharpened by re-comparing, as true rationals, every pair within one
    representable step of the float maximum.  Empty input returns ``1``.
    """
    if not lengths.size:
        return Fraction(1)
    ratios = lengths / dists
    best = float(ratios.max())
    near = ratios >= np.nextafter(best, 0.0)
    # Deduplicate the tied (length, dist) pairs before touching Fraction:
    # on a stretch-1 program *every* delivered pair ties at the maximum,
    # and a Python loop over n^2 pairs would dwarf the verification
    # itself.  Distinct pairs are bounded by the distinct (length, dist)
    # combinations — a handful on any regular family.
    packed = lengths[near] * (int(dists.max()) + 1) + dists[near]
    worst = Fraction(0)
    base = int(dists.max()) + 1
    for key in np.unique(packed):
        s = Fraction(int(key) // base, int(key) % base)
        if s > worst:
            worst = s
    return worst if worst > 0 else Fraction(1)


@dataclass(frozen=True)
class VerificationReport:
    """Closed-form classification of every ordered pair of a program.

    Attributes
    ----------
    kind:
        The verified program's kind (``"next-hop"`` or ``"header-state"``).
    n:
        Number of vertices.
    num_states:
        Size of the analyzed functional graph: ``n * n`` flat
        (destination, node) states for a next-hop program, the interned
        state count for a header-state program.
    masked:
        Whether the program carries :data:`DROPPED` sentinels (i.e. is a
        fault-masked view, see :func:`repro.sim.faults.apply_faults`).
    outcome:
        ``(n, n)`` int8 matrix of verdict codes: ``outcome[x, y]`` is the
        proven fate of the message ``x -> y``.  The diagonal — and, when an
        ``alive`` mask was supplied, every pair with a dead endpoint — is
        :data:`VERDICT_INFEASIBLE`, matching the fault taxonomy.
    hops:
        ``(n, n)`` int64 matrix of exact hop counts: the full route length
        for delivered pairs and the walked prefix for misdelivered/dropped
        pairs (the masked executor's ``lengths`` convention);
        :data:`NO_ROUTE` for livelocked and infeasible pairs; ``0`` on the
        alive diagonal.
    issues:
        Semantic oddities found by well-formedness analysis (empty on a
        healthy artifact); see :func:`verify_structure`.
    max_stretch / mean_stretch:
        Exact worst and average stretch of the delivered off-diagonal
        pairs, populated when a distance matrix was supplied to
        :func:`verify_program` (``None`` otherwise).
    """

    kind: str
    n: int
    num_states: int
    masked: bool
    outcome: np.ndarray
    hops: np.ndarray
    issues: Tuple[str, ...] = ()
    max_stretch: Optional[Fraction] = None
    mean_stretch: Optional[float] = None

    # ------------------------------------------------------------------
    @property
    def ok(self) -> bool:
        """No semantic issues and no lost pair (livelock or misdelivery)."""
        counts = self.counts()
        return (
            not self.issues
            and counts["livelocked"] == 0
            and counts["misdelivered"] == 0
        )

    @property
    def all_delivered(self) -> bool:
        """Whether every feasible (off-diagonal, alive) pair is delivered."""
        feasible = self.outcome != VERDICT_INFEASIBLE
        return bool((self.outcome[feasible] == VERDICT_DELIVERED).all())

    @property
    def max_finite_hops(self) -> int:
        """Largest exact hop count of any feasible pair (0 when none)."""
        finite = self.hops[self.outcome != VERDICT_INFEASIBLE]
        finite = finite[finite >= 0]
        return int(finite.max()) if finite.size else 0

    def counts(self) -> Dict[str, int]:
        """Pair tally per verdict name (diagonal included under infeasible)."""
        return {
            name: int((self.outcome == code).sum())
            for code, name in VERDICT_NAMES.items()
        }

    def _pairs(self, code: int) -> List[Tuple[int, int]]:
        xs, ys = np.nonzero(self.outcome == code)
        return [(int(x), int(y)) for x, y in zip(xs, ys)]

    def delivered_pairs(self) -> List[Tuple[int, int]]:
        """Ordered pairs proven to deliver, sorted."""
        return self._pairs(VERDICT_DELIVERED)

    def livelocked_pairs(self) -> List[Tuple[int, int]]:
        """Ordered pairs proven to forward forever, sorted."""
        return self._pairs(VERDICT_LIVELOCKED)

    def misdelivered_pairs(self) -> List[Tuple[int, int]]:
        """Ordered pairs proven to deliver at the wrong node, sorted."""
        return self._pairs(VERDICT_MISDELIVERED)

    def dropped_pairs(self) -> List[Tuple[int, int]]:
        """Ordered pairs proven to die at a masked transition, sorted."""
        return self._pairs(VERDICT_DROPPED)

    def require_all_delivered(self) -> np.ndarray:
        """Length matrix of a fully-delivering program, raising otherwise.

        The static analogue of
        :meth:`repro.sim.engine.SimulationResult.require_all_delivered`:
        returns an ``(n, n)`` int64 matrix with exact route lengths, ``0``
        on the diagonal and :data:`NO_ROUTE` on infeasible pairs.
        """
        if not self.all_delivered:
            counts = self.counts()
            xs, ys = np.nonzero(
                (self.outcome != VERDICT_DELIVERED)
                & (self.outcome != VERDICT_INFEASIBLE)
            )
            raise ProgramVerificationError(
                f"not every pair is proven to deliver: "
                f"{counts['misdelivered']} misdelivered, "
                f"{counts['livelocked']} livelocked, "
                f"{counts['dropped']} dropped; first lost pair "
                f"{int(xs[0])} -> {int(ys[0])} "
                f"({VERDICT_NAMES[int(self.outcome[xs[0], ys[0]])]})"
            )
        lengths = self.hops.copy()
        lengths[np.arange(self.n), np.arange(self.n)] = np.where(
            self.hops.diagonal() >= 0, 0, NO_ROUTE
        )
        return lengths

    def stretch(self, dist: np.ndarray) -> Tuple[Fraction, float]:
        """Exact (max, mean) stretch of the delivered off-diagonal pairs.

        ``dist`` is the true distance matrix of the routed graph.  Pairs
        not delivered (or at distance ``<= 0``, e.g. unreachable under
        faults) never enter a ratio.  Returns ``(Fraction(1), 1.0)`` when
        nothing qualifies.
        """
        mask = (self.outcome == VERDICT_DELIVERED) & (dist > 0)
        np.fill_diagonal(mask, False)
        if not mask.any():
            return Fraction(1), 1.0
        lengths = self.hops[mask].astype(np.int64)
        dists = dist[mask].astype(np.int64)
        return _exact_max_ratio(lengths, dists), float((lengths / dists).mean())


# ----------------------------------------------------------------------
# well-formedness
# ----------------------------------------------------------------------
def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ProgramVerificationError(message)


def _check_next_hop_structure(program: NextHopProgram) -> List[str]:
    nn = program.next_node
    _require(
        nn.ndim == 2 and nn.shape[0] == nn.shape[1],
        f"next_node must be a square (n, n) matrix, got shape {nn.shape}",
    )
    _require(
        np.issubdtype(nn.dtype, np.signedinteger),
        f"next_node dtype must be a signed integer (sentinels are negative), "
        f"got {nn.dtype}",
    )
    n = nn.shape[0]
    bad = ((nn < 0) & (nn != MISDELIVER) & (nn != DROPPED)) | (nn >= n)
    if bad.any():
        xs, ys = np.nonzero(bad)
        c, d = int(xs[0]), int(ys[0])
        raise ProgramVerificationError(
            f"next_node contains {int(bad.sum())} out-of-range entries: first "
            f"at (node {c}, dest {d}) value {int(nn[c, d])}; valid entries "
            f"are node ids 0..{n - 1}, MISDELIVER ({MISDELIVER}) and "
            f"DROPPED ({DROPPED})"
        )
    issues: List[str] = []
    diag = nn.diagonal()
    non_absorbing = np.nonzero(diag != np.arange(n))[0]
    if non_absorbing.size:
        d = int(non_absorbing[0])
        issues.append(
            f"{non_absorbing.size} destination(s) are not absorbing "
            f"(first: next_node[{d}, {d}] = {int(diag[d])}, expected {d}); "
            f"messages pass through such destinations without delivering"
        )
    return issues


def _check_header_state_structure(program: HeaderStateProgram) -> List[str]:
    succ, deliver = program.succ, program.deliver
    node_of, hops_field = program.node_of, program.hops_to_deliver
    initial = program.initial
    _require(
        succ.ndim == 1
        and deliver.shape == succ.shape
        and node_of.shape == succ.shape
        and hops_field.shape == succ.shape,
        f"state arrays must be 1-D and equally sized, got succ {succ.shape}, "
        f"deliver {deliver.shape}, node_of {node_of.shape}, "
        f"hops_to_deliver {hops_field.shape}",
    )
    _require(
        initial.ndim == 2 and initial.shape[0] == initial.shape[1],
        f"initial must be a square (n, n) matrix, got shape {initial.shape}",
    )
    _require(
        np.issubdtype(succ.dtype, np.signedinteger),
        f"succ dtype must be a signed integer (sentinels are negative), "
        f"got {succ.dtype}",
    )
    num_states = succ.shape[0]
    n = initial.shape[0]
    bad = ((succ < 0) & (succ != DROPPED)) | (succ >= num_states)
    if bad.any():
        s = int(np.nonzero(bad)[0][0])
        raise ProgramVerificationError(
            f"succ contains {int(bad.sum())} out-of-range state ids: first at "
            f"state {s} value {int(succ[s])}; valid entries are state ids "
            f"0..{num_states - 1} and DROPPED ({DROPPED})"
        )
    bad = (node_of < 0) | (node_of >= n)
    if bad.any():
        s = int(np.nonzero(bad)[0][0])
        raise ProgramVerificationError(
            f"node_of contains {int(bad.sum())} out-of-range node ids: first "
            f"at state {s} value {int(node_of[s])}; valid node ids are "
            f"0..{n - 1}"
        )
    off = ~np.eye(n, dtype=bool)
    bad = (initial < 0) | (initial >= num_states)
    bad &= off
    if bad.any():
        xs, ys = np.nonzero(bad)
        x, y = int(xs[0]), int(ys[0])
        raise ProgramVerificationError(
            f"initial contains {int(bad.sum())} out-of-range off-diagonal "
            f"state ids: first at initial[{x}, {y}] value "
            f"{int(initial[x, y])}; valid state ids are 0..{num_states - 1}"
        )
    issues: List[str] = []
    diag_bad = np.nonzero(initial.diagonal() != NO_ROUTE)[0]
    if diag_bad.size:
        d = int(diag_bad[0])
        issues.append(
            f"initial diagonal should be {NO_ROUTE} (no self-message) at "
            f"{diag_bad.size} vertice(s), first: initial[{d}, {d}] = "
            f"{int(initial[d, d])}"
        )
    recomputed = functional_hops(succ, deliver | (succ == DROPPED))
    mismatch = np.nonzero(hops_field != recomputed)[0]
    if mismatch.size:
        s = int(mismatch[0])
        issues.append(
            f"hops_to_deliver disagrees with the recomputed stop analysis at "
            f"{mismatch.size} state(s), first: state {s} stores "
            f"{int(hops_field[s])}, analysis proves {int(recomputed[s])}"
        )
    return issues


def verify_structure(program: RoutingProgram) -> List[str]:
    """Well-formedness analysis of a compiled program's arrays.

    Raises :class:`ProgramVerificationError` on structural corruption (wrong
    shape, unsigned dtype, out-of-range successor / node / initial-state
    entries — including a stray ``-1``, which is never a valid transition).
    Returns the list of *semantic* issues: conditions the executors handle
    deterministically but that no healthy compile produces (non-absorbing
    destinations, a stale ``hops_to_deliver``, a non-``-1`` initial
    diagonal).
    """
    if isinstance(program, NextHopProgram):
        return _check_next_hop_structure(program)
    if isinstance(program, HeaderStateProgram):
        return _check_header_state_structure(program)
    if isinstance(program, GenericProgram):
        raise ProgramVerificationError(
            f"generic program over {program.n} vertices is interpreted, not "
            f"compiled; static verification needs a next-hop or header-state "
            f"artifact"
        )
    raise ProgramVerificationError(
        f"unknown program kind {program.kind!r}: cannot verify"
    )


# ----------------------------------------------------------------------
# functional-graph resolution
# ----------------------------------------------------------------------
def _resolve_functional(
    succ: np.ndarray, terminal: np.ndarray, limit: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pointer-doubling resolution of a functional graph with terminals.

    ``succ`` maps each state to its unique successor (terminal states must
    self-loop); ``terminal`` marks the absorbing states; ``limit`` is an
    upper bound on the length of any terminal-reaching walk (the state
    count of one connected analysis domain suffices — a longer walk would
    revisit a state and therefore never terminate).

    Returns ``(target, steps, resolved)``: for every resolved state, the
    terminal its walk reaches and the exact number of transitions to get
    there; states left unresolved after ``ceil(log2(limit))`` doubling
    rounds provably cycle.  The loop keeps the invariant *"``steps[s]`` is
    the exact distance from ``s`` to ``target[s]``"* — terminals carry
    ``(self, 0)``, which also makes every round *idempotent on resolved
    states* (their target self-loops contributing 0 further steps), so the
    doubling runs unconditionally over the full state vector: two
    ``np.take`` gathers per round, no index compaction, no scatter
    writes.  That is the fastest shape numpy offers for this recurrence —
    ``O(states · log(limit))`` contiguous work with early exit once
    everything resolved — and the gathers stay cache-local because a
    functional-graph successor never leaves its own analysis domain.
    ``steps`` comes back in a domain-sized dtype (``int32`` until the
    state count or walk bound needs more); callers widen on output.
    """
    num_states = succ.shape[0]
    # int32 state ids halve the gather traffic of the hot loop; resolved
    # steps are bounded by limit and an unresolved state's accumulator by
    # 2 * limit, so the 2**30 guard keeps even the transient values exact.
    compute_dtype = np.int32 if num_states <= 2**30 and limit <= 2**30 else np.int64
    target = succ.astype(compute_dtype, copy=True)
    tidx = np.flatnonzero(terminal)
    target[tidx] = tidx.astype(compute_dtype)
    steps = (~terminal).astype(compute_dtype)
    resolved = np.take(terminal, target)
    span = 1
    rounds = 0
    while span <= limit and not resolved.all():
        steps += np.take(steps, target)
        target = np.take(target, target)
        span *= 2
        rounds += 1
        # The resolved gather exists only to exit early; every other round
        # (and on the provable-cycle bound) keeps it exact where it
        # matters while halving the bookkeeping gathers.
        if rounds % 2 == 0 or span > limit:
            resolved = np.take(terminal, target)
    return target, steps, resolved


def _mark_infeasible(
    outcome: np.ndarray, hops: np.ndarray, n: int, alive: Optional[np.ndarray]
) -> None:
    """Apply the diagonal / dead-endpoint conventions of the fault taxonomy."""
    if alive is not None:
        dead = ~np.asarray(alive, dtype=bool)
        outcome[dead, :] = VERDICT_INFEASIBLE
        outcome[:, dead] = VERDICT_INFEASIBLE
        hops[dead, :] = NO_ROUTE
        hops[:, dead] = NO_ROUTE
    diag = np.arange(n)
    outcome[diag, diag] = VERDICT_INFEASIBLE
    hops[diag, diag] = 0
    if alive is not None:
        hops[diag, diag] = np.where(np.asarray(alive, dtype=bool), 0, NO_ROUTE)


def _verify_next_hop(
    program: NextHopProgram, alive: Optional[np.ndarray]
) -> Tuple[np.ndarray, np.ndarray, bool]:
    n = program.n
    nn = program.next_node
    if n < 2:
        masked = bool((nn == DROPPED).any())
        outcome = np.full((n, n), VERDICT_INFEASIBLE, dtype=np.int8)
        hops = np.zeros((n, n), dtype=np.int64)
        _mark_infeasible(outcome, hops, n, alive)
        return outcome, hops, masked
    # Flat destination-major state space: state d*n + c is "the message is
    # at node c, destined to d" — the same layout as the executor's
    # location table, which keeps every walk inside its own destination
    # column (one cache-resident 4·n-byte block per column).  Widen BEFORE
    # adding column offsets: the stored dtype is domain-sized and would
    # overflow at d*n.  int32 ids (n² permitting) halve the gather traffic
    # of the resolution loop.
    idx_dtype = np.int32 if n * n <= 2**30 else np.int64
    nt = nn.T.astype(idx_dtype)  # fused strided cast, lands C-contiguous
    is_mis = nt == MISDELIVER
    is_drop = nt == DROPPED
    masked = bool(is_drop.any())
    diag = np.arange(n)
    absorbing = nn[diag, diag] == diag
    # Terminal flat states, mirroring executor precedence exactly:
    # * (d, d) with absorbing d — the arrival hop was already counted, so
    #   the terminal contributes 0 further steps (delivered = walk length);
    # * any (d, c) whose successor is a sentinel — the message stops AT c
    #   before taking the hop (misdeliver/drop = walked prefix length).
    # A non-absorbing (d, d) is NOT terminal: messages pass through it,
    # exactly like every executor kernel.
    terminal = is_mis | is_drop
    terminal[diag, diag] |= absorbing
    offsets = (diag.astype(idx_dtype) * idx_dtype(n))[:, None]
    flat_succ = (nt + offsets).ravel()
    term = terminal.ravel()
    tidx = np.flatnonzero(term)
    flat_succ[tidx] = tidx.astype(idx_dtype)
    target, steps, resolved = _resolve_functional(flat_succ, term, limit=n)
    # Classify each terminal once, then read every pair's verdict off its
    # walk's target: an unresolved walk's target is some non-terminal
    # state, whose class is the LIVELOCKED default — so one gather covers
    # the proven livelocks too.
    term_class = np.full(n * n, VERDICT_LIVELOCKED, dtype=np.int8)
    term_class[np.flatnonzero(is_mis)] = VERDICT_MISDELIVERED
    term_class[np.flatnonzero(is_drop)] = VERDICT_DROPPED
    dd = diag[absorbing]
    term_class[dd * n + dd] = VERDICT_DELIVERED
    outcome_flat = np.take(term_class, target)
    hops_flat = np.where(resolved, steps, steps.dtype.type(NO_ROUTE))
    # Flat layout is (dest, source); reports are (source, dest).  Transpose
    # in the narrow dtype, then widen hops to the report's int64 contract.
    outcome = np.ascontiguousarray(outcome_flat.reshape(n, n).T)
    hops = np.ascontiguousarray(hops_flat.reshape(n, n).T).astype(np.int64)
    _mark_infeasible(outcome, hops, n, alive)
    return outcome, hops, masked


def _verify_header_state(
    program: HeaderStateProgram, alive: Optional[np.ndarray]
) -> Tuple[np.ndarray, np.ndarray, bool]:
    n = program.n
    succ, deliver, node_of = program.succ, program.deliver, program.node_of
    masked = bool((succ == DROPPED).any())
    if n < 2 or not succ.size:
        outcome = np.full((n, n), VERDICT_INFEASIBLE, dtype=np.int8)
        hops = np.zeros((n, n), dtype=np.int64)
        _mark_infeasible(outcome, hops, n, alive)
        return outcome, hops, masked
    # Stopping mirrors the executors: a delivering state stops the walk
    # first (delivery wins over a masked successor), and a DROPPED
    # successor stops it AT the current state — both before the would-be
    # hop, so every stop kind's length is the walked prefix.
    is_drop = succ == DROPPED
    terminal = np.asarray(deliver, dtype=bool) | is_drop
    idx = np.arange(succ.shape[0], dtype=np.intp)
    state_succ = succ.astype(np.intp, copy=True)
    state_succ[terminal] = idx[terminal]
    target, steps, resolved = _resolve_functional(
        state_succ, terminal, limit=succ.shape[0]
    )
    start = program.initial.astype(np.intp)
    start_safe = np.where(start >= 0, start, 0)
    t = target[start_safe]
    res = resolved[start_safe]
    deliv_t = np.asarray(deliver, dtype=bool)[t]
    node_t = node_of[t].astype(np.int64)
    dst = np.arange(n, dtype=np.int64)[None, :]
    outcome = np.where(
        res,
        np.where(
            deliv_t,
            np.where(
                node_t == dst,
                np.int8(VERDICT_DELIVERED),
                np.int8(VERDICT_MISDELIVERED),
            ),
            np.int8(VERDICT_DROPPED),
        ),
        np.int8(VERDICT_LIVELOCKED),
    ).astype(np.int8)
    hops = np.where(res, steps[start_safe], steps.dtype.type(NO_ROUTE)).astype(
        np.int64
    )
    _mark_infeasible(outcome, hops, n, alive)
    return outcome, hops, masked


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
def verify_program(
    program: RoutingProgram,
    *,
    dist: Optional[np.ndarray] = None,
    alive: Optional[np.ndarray] = None,
    strict: bool = False,
) -> VerificationReport:
    """Statically verify a compiled routing program.

    Proves the exact fate (verdict + hop count) of every ordered pair by
    functional-graph analysis — no message is ever executed.  ``dist``
    (the true distance matrix) additionally populates the report's exact
    max/mean stretch; ``alive`` (a boolean vertex mask, the fault model's
    survivor set) marks dead-endpoint pairs :data:`VERDICT_INFEASIBLE`
    exactly like :func:`repro.sim.faults.simulate_with_faults`.

    Structural corruption always raises :class:`ProgramVerificationError`;
    with ``strict=True`` the semantic issues of :func:`verify_structure`
    raise too instead of being returned on the report.  Generic programs
    are not statically verifiable and always raise.
    """
    issues = verify_structure(program)
    if strict and issues:
        raise ProgramVerificationError(
            f"program failed strict verification with {len(issues)} "
            f"issue(s): " + "; ".join(issues)
        )
    if alive is not None:
        alive = np.asarray(alive, dtype=bool)
        if alive.shape != (program.n,):
            raise ProgramVerificationError(
                f"alive mask must have shape ({program.n},), got {alive.shape}"
            )
    if isinstance(program, NextHopProgram):
        outcome, hops, masked = _verify_next_hop(program, alive)
        num_states = program.n * program.n
    else:
        assert isinstance(program, HeaderStateProgram)
        outcome, hops, masked = _verify_header_state(program, alive)
        num_states = program.num_states
    report = VerificationReport(
        kind=program.kind,
        n=program.n,
        num_states=num_states,
        masked=masked,
        outcome=outcome,
        hops=hops,
        issues=tuple(issues),
    )
    if dist is not None:
        max_stretch, mean_stretch = report.stretch(np.asarray(dist))
        report = replace(
            report, max_stretch=max_stretch, mean_stretch=mean_stretch
        )
    return report
