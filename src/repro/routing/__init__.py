"""Routing model and universal routing schemes.

The paper models a *routing function* on a graph ``G`` as a triple
``R = (I, H, P)`` of initialization, header and port functions: to send a
message from ``u`` to ``v``, the source computes the initial header
``h_1 = I(u, v)``; a node ``x`` holding a message with header ``h`` forwards
it through output port ``P(x, h)`` with the new header ``H(x, h)``; delivery
happens at the node where ``P`` returns the reserved value ``DELIVER`` (the
paper writes ``P(u_k, h_k) = ⊥``).

A *routing scheme* is a function that returns a routing function for any
network; it is *universal* when it applies to all networks.  This subpackage
implements the model (:mod:`repro.routing.model`, :mod:`repro.routing.paths`)
and the concrete universal schemes used to regenerate Table 1:

* :mod:`repro.routing.tables` — shortest-path routing tables, the
  ``O(n log n)``-bits-per-router upper bound that Theorem 1 proves optimal
  for every stretch below 2.
* :mod:`repro.routing.interval` — (k-)interval routing, including the
  1-interval scheme on trees that yields ``O(d log n)`` bits.
* :mod:`repro.routing.ecube` — dimension-order routing on hypercubes
  (``O(log n)`` bits).
* :mod:`repro.routing.complete` — the complete-graph example: ``O(log n)``
  bits under a good port labelling, ``Θ(n log n)`` under an adversarial one.
* :mod:`repro.routing.spanner` — greedy multiplicative spanners, the
  substrate of the large-stretch schemes.
* :mod:`repro.routing.landmark` — a Cowen-style landmark scheme
  (stretch ≤ 3) trading memory for stretch.
* :mod:`repro.routing.hierarchical` — spanner+landmark composition covering
  the large-stretch rows of Table 1.
* :mod:`repro.routing.program` — the compiled-program IR every scheme
  lowers to (``rf.compile_program()``): serializable next-hop /
  header-state / generic artifacts executed by :mod:`repro.sim.engine` and
  cached across processes by :mod:`repro.analysis.runner`.
"""

from repro.routing.model import (
    DELIVER,
    BaseRoutingScheme,
    DestinationBasedRoutingFunction,
    LabeledRoutingFunction,
    RoutingFunction,
    RoutingScheme,
    SchemeInapplicableError,
    TableRoutingFunction,
)
from repro.routing.program import (
    GenericProgram,
    HeaderStateExplosionError,
    HeaderStateProgram,
    NextHopProgram,
    RoutingProgram,
    compile_scheme_program,
    program_from_bytes,
)
from repro.routing.verify import (
    ProgramVerificationError,
    VerificationReport,
    verify_program,
    verify_structure,
)
from repro.routing.paths import (
    RouteResult,
    RoutingLoopError,
    all_pairs_routing_lengths,
    route,
    stretch_factor,
    stretch_of_pair,
    verify_routing_function,
)
from repro.routing.tables import ShortestPathTableScheme, build_next_hop_matrix
from repro.routing.interval import (
    IntervalRoutingFunction,
    IntervalRoutingScheme,
    TreeIntervalRoutingScheme,
    cyclic_intervals_of_set,
)
from repro.routing.ecube import (
    ECubeRoutingFunction,
    ECubeRoutingScheme,
    MaskECubeRoutingFunction,
    MaskECubeRoutingScheme,
)
from repro.routing.complete import (
    AdversarialCompleteGraphScheme,
    ModularCompleteGraphScheme,
)
from repro.routing.spanner import greedy_spanner, spanner_stretch
from repro.routing.landmark import (
    CowenLandmarkScheme,
    LandmarkRoutingFunction,
    RewritingLandmarkRoutingFunction,
)
from repro.routing.hierarchical import (
    HierarchicalSpannerScheme,
    RewritingHierarchicalSpannerRoutingFunction,
)

__all__ = [
    "DELIVER",
    "RoutingFunction",
    "DestinationBasedRoutingFunction",
    "LabeledRoutingFunction",
    "TableRoutingFunction",
    "BaseRoutingScheme",
    "RoutingScheme",
    "SchemeInapplicableError",
    "RoutingProgram",
    "NextHopProgram",
    "HeaderStateProgram",
    "GenericProgram",
    "HeaderStateExplosionError",
    "compile_scheme_program",
    "program_from_bytes",
    "ProgramVerificationError",
    "VerificationReport",
    "verify_program",
    "verify_structure",
    "RouteResult",
    "RoutingLoopError",
    "route",
    "stretch_factor",
    "stretch_of_pair",
    "all_pairs_routing_lengths",
    "verify_routing_function",
    "ShortestPathTableScheme",
    "build_next_hop_matrix",
    "IntervalRoutingFunction",
    "IntervalRoutingScheme",
    "TreeIntervalRoutingScheme",
    "cyclic_intervals_of_set",
    "ECubeRoutingFunction",
    "ECubeRoutingScheme",
    "MaskECubeRoutingFunction",
    "MaskECubeRoutingScheme",
    "ModularCompleteGraphScheme",
    "AdversarialCompleteGraphScheme",
    "greedy_spanner",
    "spanner_stretch",
    "CowenLandmarkScheme",
    "LandmarkRoutingFunction",
    "RewritingLandmarkRoutingFunction",
    "HierarchicalSpannerScheme",
    "RewritingHierarchicalSpannerRoutingFunction",
]
