"""Interval routing schemes (ILS).

The *shortest path interval routing scheme* (Santoro & Khatib; van Leeuwen &
Tan) groups, on each output arc, the destination labels routed through that
arc into cyclic intervals.  The memory needed at a router is then roughly
``(number of intervals) * 2 * ceil(log2 n)`` bits instead of one entry per
destination.  Section 1 of the paper recalls that trees (acyclic graphs),
outerplanar graphs and unit circular-arc graphs admit 1-interval shortest
path routing, giving ``MEM_local = O(d log n)`` bits, whereas on worst-case
graphs the number of intervals per arc can be large — which is exactly why
the universal version of the scheme cannot beat routing tables (Theorem 1).

Two builders are provided:

* :class:`TreeIntervalRoutingScheme` — the classical optimal 1-interval
  labelling on trees (DFS numbering).
* :class:`IntervalRoutingScheme` — universal: shortest-path next hops plus a
  DFS-based vertex relabelling heuristic that keeps the number of intervals
  small on the easy graph classes while remaining correct on all graphs.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.graphs.digraph import PortLabeledGraph
from repro.graphs.properties import is_tree
from repro.graphs.shortest_paths import UNREACHABLE, distance_matrix
from repro.routing.model import DELIVER, BaseRoutingScheme, RoutingFunction
from repro.routing.tables import TieBreak, build_next_hop_matrix

__all__ = [
    "cyclic_intervals_of_set",
    "IntervalRoutingFunction",
    "IntervalRoutingScheme",
    "TreeIntervalRoutingScheme",
]

Interval = Tuple[int, int]


def cyclic_intervals_of_set(labels: Sequence[int], n: int) -> List[Interval]:
    """Minimal set of cyclic intervals over ``Z_n`` covering ``labels`` exactly.

    An interval ``(lo, hi)`` denotes ``{lo, lo+1, ..., hi}`` modulo ``n``
    (wrapping when ``hi < lo``).  The returned list is minimal: its length is
    the number of maximal runs of consecutive labels on the cycle, which is
    the standard "number of intervals" measure of interval routing.

    Raises :class:`ValueError` on labels outside ``0..n-1`` or duplicates.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    label_set = set(int(x) for x in labels)
    if len(label_set) != len(list(labels)):
        raise ValueError("duplicate labels")
    if not label_set:
        return []
    if any(not 0 <= x < n for x in label_set):
        raise ValueError(f"labels must lie in 0..{n - 1}")
    if len(label_set) == n:
        return [(0, n - 1)]
    # Walk the cycle once, recording maximal runs.
    in_set = np.zeros(n, dtype=bool)
    in_set[list(label_set)] = True
    # Start scanning right after a gap so that no run is split at position 0.
    gaps = np.nonzero(~in_set)[0]
    start_scan = int(gaps[0]) + 1
    intervals: List[Interval] = []
    run_start: Optional[int] = None
    for offset in range(n):
        pos = (start_scan + offset) % n
        if in_set[pos]:
            if run_start is None:
                run_start = pos
            run_end = pos
        else:
            if run_start is not None:
                intervals.append((run_start, run_end))
                run_start = None
    if run_start is not None:
        intervals.append((run_start, run_end))
    return intervals


def _interval_contains(interval: Interval, label: int, n: int) -> bool:
    lo, hi = interval
    if lo <= hi:
        return lo <= label <= hi
    return label >= lo or label <= hi


class IntervalRoutingFunction(RoutingFunction):
    """Routing function whose local decision is an interval lookup.

    Parameters
    ----------
    graph:
        Underlying graph.
    labeling:
        Bijection ``vertex -> label`` in ``0 .. n-1`` chosen by the scheme.
    port_intervals:
        ``port_intervals[x][p]`` is the tuple of cyclic intervals of
        destination *labels* routed from ``x`` through port ``p``.  The
        intervals of the ports of a vertex must partition the labels of the
        other vertices.
    """

    #: Headers are destination labels in ``0..n-1`` (never rewritten): the
    #: header-compiled simulator path applies.
    can_vectorize = True

    def program_kind(self) -> str:
        """Next-hop form iff the label-constant contract is intact.

        Interval headers are fixed destination labels; a subclass that
        rewrites them or changes how the initial label is derived falls
        through to the base resolution instead of being compiled to a
        fabricated ``dest -> port`` matrix.
        """
        cls = type(self)
        if (
            cls.next_header is RoutingFunction.next_header
            and cls.initial_header is IntervalRoutingFunction.initial_header
        ):
            return "next-hop"
        return super().program_kind()

    def __init__(
        self,
        graph: PortLabeledGraph,
        labeling: Mapping[int, int],
        port_intervals: Mapping[int, Mapping[int, Sequence[Interval]]],
        validate: bool = True,
    ) -> None:
        super().__init__(graph)
        n = graph.n
        self._label_of: Dict[int, int] = {int(v): int(l) for v, l in labeling.items()}
        self._vertex_of_label: Dict[int, int] = {l: v for v, l in self._label_of.items()}
        self._port_intervals: Dict[int, Dict[int, Tuple[Interval, ...]]] = {
            int(x): {int(p): tuple((int(a), int(b)) for a, b in ivs) for p, ivs in d.items()}
            for x, d in port_intervals.items()
        }
        if validate:
            self._validate()

    def _validate(self) -> None:
        n = self._graph.n
        if sorted(self._label_of.values()) != list(range(n)):
            raise ValueError("labeling must be a bijection onto 0..n-1")
        for x in range(n):
            ports = self._port_intervals.get(x, {})
            covered: Dict[int, int] = {}
            for p, ivs in ports.items():
                if not 1 <= p <= self._graph.degree(x):
                    raise ValueError(f"vertex {x}: invalid port {p}")
                for iv in ivs:
                    lo, hi = iv
                    length = (hi - lo) % n + 1
                    for k in range(length):
                        lab = (lo + k) % n
                        if lab in covered:
                            raise ValueError(
                                f"vertex {x}: label {lab} covered by ports {covered[lab]} and {p}"
                            )
                        covered[lab] = p
            expected = set(range(n)) - {self._label_of[x]}
            if set(covered) != expected:
                missing = sorted(expected - set(covered))
                raise ValueError(f"vertex {x}: labels {missing[:5]} not covered by any interval")

    # ------------------------------------------------------------------
    def label_of(self, vertex: int) -> int:
        """Label assigned to ``vertex`` by the scheme."""
        return self._label_of[vertex]

    def vertex_of_label(self, label: int) -> int:
        """Vertex carrying ``label``."""
        return self._vertex_of_label[label]

    def intervals_at(self, node: int) -> Dict[int, Tuple[Interval, ...]]:
        """Mapping ``port -> intervals`` at ``node`` (a copy)."""
        return {p: tuple(ivs) for p, ivs in self._port_intervals.get(node, {}).items()}

    def num_intervals(self, node: int) -> int:
        """Total number of intervals stored at ``node``."""
        return sum(len(ivs) for ivs in self._port_intervals.get(node, {}).values())

    def max_intervals_per_arc(self) -> int:
        """Maximum number of intervals on a single arc (the ILS compactness)."""
        best = 0
        for x, ports in self._port_intervals.items():
            for ivs in ports.values():
                best = max(best, len(ivs))
        return best

    def local_encoding_bits(self, node: int) -> int:
        """Bits of the scheme's own interval representation at ``node``.

        Per port: an Elias-gamma interval count plus two ``ceil(log2 n)``-bit
        endpoints per interval — the encoding whose size is ``O(deg log n)``
        on the 1-interval graph classes of Section 1.  This is the quantity
        :func:`repro.memory.requirement.local_memory_bits` uses for interval
        routing functions (the generic coders cannot see the scheme's vertex
        relabelling and would over-count).
        """
        from repro.memory.encoding import elias_gamma_length, fixed_width

        n = self._graph.n
        label_width = fixed_width(max(n - 1, 0))
        total = 0
        for port in range(1, self._graph.degree(node) + 1):
            intervals = self._port_intervals.get(node, {}).get(port, ())
            total += elias_gamma_length(len(intervals) + 1)
            total += 2 * label_width * len(intervals)
        return total

    # ------------------------------------------------------------------
    def initial_header(self, source: int, dest: int) -> int:
        return self._label_of[dest]

    def port(self, node: int, header: int) -> int:
        label = int(header)
        if label == self._label_of[node]:
            return DELIVER
        n = self._graph.n
        for p, ivs in self._port_intervals.get(node, {}).items():
            for iv in ivs:
                if _interval_contains(iv, label, n):
                    return p
        raise ValueError(f"vertex {node} has no interval containing label {label}")

    def local_map(self, node: int) -> Dict[int, int]:
        """The ``dest -> port`` map induced by the interval lookup (for checks)."""
        return {
            dest: self.port(node, self._label_of[dest])
            for dest in self._graph.vertices()
            if dest != node
        }


class TreeIntervalRoutingScheme(BaseRoutingScheme):
    """Optimal 1-interval shortest-path routing on trees.

    Vertices are relabelled by DFS (preorder) numbers from ``root``; the arc
    from a vertex to a child carries the single interval of the child's
    subtree and the arc to the parent carries the (cyclic) complement of the
    vertex's own subtree.  Every arc stores exactly one interval, hence the
    ``O(d log n)`` bits per router quoted in the paper.
    """

    name = "tree-interval-routing"
    stretch_guarantee = 1.0

    def __init__(self, root: int = 0) -> None:
        self.root = root

    def build(self, graph: PortLabeledGraph) -> IntervalRoutingFunction:
        """Build the 1-interval routing function; raises on non-trees."""
        if not is_tree(graph):
            raise ValueError("TreeIntervalRoutingScheme requires a tree")
        n = graph.n
        root = self.root
        if not 0 <= root < n:
            raise ValueError(f"root {root} out of range")
        # Iterative DFS computing preorder numbers and subtree sizes.
        preorder: Dict[int, int] = {}
        subtree_size: Dict[int, int] = {}
        parent: Dict[int, int] = {root: -1}
        order: List[int] = []
        stack: List[int] = [root]
        counter = 0
        while stack:
            u = stack.pop()
            preorder[u] = counter
            counter += 1
            order.append(u)
            for v in reversed(graph.neighbors(u)):
                if v not in parent and v != root:
                    parent[v] = u
                    stack.append(v)
        for u in reversed(order):
            subtree_size[u] = 1 + sum(
                subtree_size[v] for v in graph.neighbors(u) if parent.get(v) == u
            )
        port_intervals: Dict[int, Dict[int, List[Interval]]] = {}
        for u in range(n):
            ivs: Dict[int, List[Interval]] = {}
            for v in graph.neighbors(u):
                p = graph.port(u, v)
                if parent.get(v) == u:
                    ivs[p] = [(preorder[v], preorder[v] + subtree_size[v] - 1)]
                else:
                    # Arc towards the parent: cyclic complement of u's subtree.
                    lo = (preorder[u] + subtree_size[u]) % n
                    hi = (preorder[u] - 1) % n
                    ivs[p] = [(lo, hi)]
            port_intervals[u] = ivs
        return IntervalRoutingFunction(graph, preorder, port_intervals)


class IntervalRoutingScheme(BaseRoutingScheme):
    """Universal shortest-path interval routing.

    Next hops are shortest-path next hops (same tie-breaking options as
    :class:`~repro.routing.tables.ShortestPathTableScheme`); the vertex
    relabelling is a DFS preorder of a BFS tree rooted at ``root``, the
    classical heuristic that yields one interval per arc on trees and few
    intervals on ring-, grid- and outerplanar-like graphs.  On arbitrary
    graphs the scheme remains correct but the number of intervals per arc may
    grow up to ``Θ(n)`` — this is the measurable face of the paper's lower
    bound.
    """

    name = "interval-routing"
    stretch_guarantee = 1.0

    def __init__(self, root: int = 0, tie_break: TieBreak = "lowest_port") -> None:
        self.root = root
        self.tie_break: TieBreak = tie_break

    def build(self, graph: PortLabeledGraph) -> IntervalRoutingFunction:
        """Build the interval routing function for an arbitrary connected graph."""
        n = graph.n
        dist = distance_matrix(graph)
        if n > 1 and (dist == UNREACHABLE).any():
            raise ValueError("interval routing requires a connected graph")
        labeling = self._dfs_labeling(graph)
        next_hop = build_next_hop_matrix(graph, tie_break=self.tie_break, dist=dist)
        port_intervals: Dict[int, Dict[int, List[Interval]]] = {}
        for x in range(n):
            by_port: Dict[int, List[int]] = {}
            for dest in range(n):
                if dest == x:
                    continue
                p = graph.port(x, int(next_hop[x, dest]))
                by_port.setdefault(p, []).append(labeling[dest])
            port_intervals[x] = {
                p: cyclic_intervals_of_set(labels, n) for p, labels in by_port.items()
            }
        return IntervalRoutingFunction(graph, labeling, port_intervals)

    def _dfs_labeling(self, graph: PortLabeledGraph) -> Dict[int, int]:
        """DFS preorder labelling started at ``self.root``."""
        n = graph.n
        root = self.root if 0 <= self.root < n else 0
        label: Dict[int, int] = {}
        seen = [False] * n
        stack = [root]
        seen[root] = True
        counter = 0
        while stack:
            u = stack.pop()
            label[u] = counter
            counter += 1
            for v in reversed(graph.neighbors(u)):
                if not seen[v]:
                    seen[v] = True
                    stack.append(v)
        # Disconnected graphs are rejected in build(); defensive completion here.
        for v in range(n):
            if v not in label:
                label[v] = counter
                counter += 1
        return label
