"""Compiled routing programs — the serializable IR every scheme lowers to.

The paper's model ``R = (I, H, P)`` is *pure local data*: per-node maps from
headers to output ports and rewritten headers.  A :class:`RoutingProgram` is
that data made explicit — a compiled, self-contained artifact that a thin
engine (:mod:`repro.sim.engine`) can execute without ever calling back into
the scheme that produced it.  Three program kinds cover the three execution
shapes the simulator historically special-cased:

* :class:`NextHopProgram` (``kind = "next-hop"``) — header-constant schemes
  (the header is a function of the destination alone, never rewritten)
  lower to a dense ``next_node[x, dest]`` matrix: the whole routing function
  is one ``(n, n)`` integer array.
* :class:`HeaderStateProgram` (``kind = "header-state"``) — finite-header
  *rewriting* schemes lower to interned ``(node, header)`` states with
  functional transition arrays ``succ``/``deliver``/``node_of`` plus the
  exact reverse-BFS ``hops_to_deliver`` livelock analysis.
* :class:`GenericProgram` (``kind = "generic"``) — the explicit opt-out
  marker for schemes whose header evolution is unbounded (or undeclared):
  execution requires the live routing function, and the program records
  only that fact (plus ``n``).

Every program serializes to a stable binary form (:meth:`RoutingProgram.to_bytes`
/ :func:`program_from_bytes`) and carries a content :meth:`~RoutingProgram.fingerprint`
(sha256 of the bytes) that is independent of process, hash seed and
platform — the property :class:`repro.analysis.runner.ExperimentCache`
relies on to cache compiled programs on disk and ship them across shard
workers as bytes.  The artifact's size in bits is directly measurable
(:func:`repro.memory.requirement.program_memory_profile` scores per-node
slices through the decodable coders), which is what ties the paper's
``MEM_G(R, x)`` to the compiled form.

Lowering is *owned by the routing classes*: every
:class:`~repro.routing.model.RoutingFunction` declares its own
:meth:`~repro.routing.model.RoutingFunction.program_kind` and lowers itself
via :meth:`~repro.routing.model.RoutingFunction.compile_program`, which
dispatches to :func:`lower_next_hop` / :func:`lower_header_state` here.
The engine performs no capability sniffing of its own.
"""

from __future__ import annotations

import hashlib
import mmap
import os
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Hashable, List, Optional, Tuple, Union

import numpy as np

from repro.graphs.digraph import PortLabeledGraph
from repro.routing.model import (
    DELIVER,
    DestinationBasedRoutingFunction,
    RoutingFunction,
    RoutingScheme,
    SchemeInapplicableError,
    TableRoutingFunction,
)

if TYPE_CHECKING:  # circular at runtime: repro.sim imports this module
    from repro.sim.faults import FaultSet

__all__ = [
    "DELTA_PATCHED",
    "DELTA_RECOMPILED",
    "DELTA_UNCHANGED",
    "DROPPED",
    "KIND_GENERIC",
    "KIND_HEADER_STATE",
    "KIND_NEXT_HOP",
    "MISDELIVER",
    "NO_ROUTE",
    "DeltaResult",
    "GenericProgram",
    "HeaderStateExplosionError",
    "HeaderStateProgram",
    "NextHopProgram",
    "RoutingProgram",
    "apply_delta",
    "compile_scheme_program",
    "functional_hops",
    "incremental_distance_matrix",
    "load_program",
    "lower",
    "lower_header_state",
    "lower_next_hop",
    "program_from_bytes",
    "save_program",
    "transition_dtype",
]

# ----------------------------------------------------------------------
# canonical negative sentinels of the compiled-program IR
# ----------------------------------------------------------------------
# Every sentinel the IR and its executors/analyses use lives here, each
# with exactly one meaning; ``transition_dtype`` keeps all of them
# representable at every array width, so no layer ever remaps them.  The
# repo lint (``tools/repro_lint.py``) pins call sites to these names — a
# raw ``-2``/``-3`` literal in :mod:`repro.sim` / :mod:`repro.routing` is
# a lint error.

#: Sentinel in a compiled next-hop matrix: the local function returns
#: :data:`~repro.routing.model.DELIVER` at a node that is not the
#: destination, so the message stops there (misdelivery).
MISDELIVER = -2

#: Sentinel in a *masked* transition array (``NextHopProgram.next_node``
#: entries, ``HeaderStateProgram.succ`` entries): the hop this transition
#: would take crosses a failed edge or enters a failed node, so a message
#: attempting it is dropped at the fault instead of moving.  Produced by
#: :func:`repro.sim.faults.apply_faults` through the :meth:`with_next_node`
#: / :meth:`with_transitions` view API; only the masked executors of
#: :mod:`repro.sim.engine` understand it — the plain executors never see it
#: because an unmasked lowering never emits it.
DROPPED = -3

#: The ``-1`` "no route / never stops" marker shared by every hop-count
#: array of the IR and its executors: ``HeaderStateProgram.hops_to_deliver``
#: entries (the walk provably cycles), ``HeaderStateProgram.initial``'s
#: diagonal (no message is sent to oneself), the length matrices of
#: :class:`repro.sim.engine.SimulationResult` /
#: :class:`repro.sim.engine.MaskedExecution` (undelivered pairs), and the
#: per-pair hops of :class:`repro.routing.verify.VerificationReport`.
#: Distinct from the graph layer's
#: :data:`repro.graphs.shortest_paths.UNREACHABLE` (same value, different
#: axis: that one marks *distances* on disconnected pairs).
NO_ROUTE = -1

#: Program kinds (also the value of ``RoutingFunction.program_kind()``).
KIND_NEXT_HOP = "next-hop"
KIND_HEADER_STATE = "header-state"
KIND_GENERIC = "generic"

#: Serialization magic + format version.  Bump the version on any change to
#: the byte layout; :func:`program_from_bytes` refuses unknown versions so a
#: cached artifact can never be silently misinterpreted.  Version 1 is the
#: historical copy-on-deserialize framing (every payload widened to
#: ``<i8``); version 2 writes aligned ``.npy``-style sections in canonical
#: domain-sized dtypes, which deserialize as **zero-copy views** over the
#: source buffer (an ``mmap`` through :func:`load_program`).  Version 1
#: blobs keep loading forever (version negotiation); everything encodes as
#: version 2 by default.
_MAGIC = b"RPRG"
_FORMAT_VERSION = 2
_V1 = 1
_SUPPORTED_VERSIONS = (1, 2)

#: Section payloads start on 64-byte boundaries (counted from the blob
#: start) so zero-copy views are cache-line / SIMD aligned when the blob
#: itself is page-aligned, as an mmap always is.
_SECTION_ALIGN = 64

#: v2 dtype codes.  Explicitly little-endian specs: the on-disk layout is
#: platform independent, and big-endian hosts fall back to a byteswapping
#: copy on load (numpy handles this through the explicit dtype).
_DTYPE_CODES = {np.dtype("|b1"): 1, np.dtype("<i2"): 2, np.dtype("<i4"): 3, np.dtype("<i8"): 4}
_CODE_DTYPES = {code: dt for dt, code in _DTYPE_CODES.items()}

_KIND_CODES = {KIND_NEXT_HOP: 1, KIND_HEADER_STATE: 2, KIND_GENERIC: 3}
_CODE_KINDS = {code: kind for kind, code in _KIND_CODES.items()}


def transition_dtype(num_values: int) -> np.dtype:
    """Smallest *signed* dtype holding ids ``0 .. num_values - 1``.

    The dtype policy of compiled programs: node and state ids are stored in
    the narrowest of ``int16``/``int32``/``int64`` that fits the domain.
    Signed on purpose — the :data:`MISDELIVER` (-2) and :data:`DROPPED`
    (-3) sentinels (and the ``-1`` of ``initial``/``hops_to_deliver``)
    stay representable verbatim at every width, so no executor or analysis
    ever needs sentinel remapping: ``== DROPPED`` comparisons behave
    identically on an int16 and an int64 program.  The int16 floor caps
    addressable domains at 32767 ids, far above the n >= 4096 target.
    """
    # The width ladder itself is the one place the fixed widths are
    # the point.  # repro-lint: allow-dtype
    if num_values - 1 <= np.iinfo(np.int16).max:  # repro-lint: allow-dtype
        return np.dtype(np.int16)  # repro-lint: allow-dtype
    if num_values - 1 <= np.iinfo(np.int32).max:  # repro-lint: allow-dtype
        return np.dtype(np.int32)  # repro-lint: allow-dtype
    return np.dtype(np.int64)


class HeaderStateExplosionError(ValueError):
    """The reachable ``(node, header)`` state set exceeded the safety cap.

    Raised by :func:`lower_header_state` when a scheme declaring
    ``can_vectorize = True`` turns out to generate more states than the cap
    allows — i.e. the finite-alphabet promise is (close to) broken.  Under
    ``method="auto"`` the simulator catches this and falls back to the
    generic interpreter; a forced ``method="header-compiled"`` propagates
    it.
    """


# ----------------------------------------------------------------------
# binary array framing (shared by to_bytes / program_from_bytes)
# ----------------------------------------------------------------------
def _pack_array_v1(array: np.ndarray) -> bytes:
    """v1 frame of one array: ndim (u8) | dims (u64 LE each) | '<i8' payload.

    Bools are widened to int64 so the payload layout has exactly one dtype;
    kept verbatim so :meth:`RoutingProgram.to_bytes` can still emit v1 blobs
    for compatibility tests against archived caches.
    """
    data = np.ascontiguousarray(array, dtype="<i8")
    head = struct.pack("<B", data.ndim) + struct.pack(
        f"<{data.ndim}Q", *data.shape
    )
    return head + data.tobytes()


def _unpack_array_v1(blob: Any, offset: int) -> Tuple[np.ndarray, int]:
    (ndim,) = struct.unpack_from("<B", blob, offset)
    offset += 1
    shape = struct.unpack_from(f"<{ndim}Q", blob, offset)
    offset += 8 * ndim
    count = int(np.prod(shape, dtype=np.int64)) if ndim else 1
    if len(blob) - offset < 8 * count:
        raise ValueError(
            f"truncated RoutingProgram payload: array of shape {shape} needs "
            f"{8 * count} bytes at offset {offset}, only "
            f"{max(len(blob) - offset, 0)} remain"
        )
    array = np.frombuffer(blob, dtype="<i8", count=count, offset=offset)
    offset += 8 * count
    return array.reshape(shape).astype(np.int64), offset


def _pack_section(parts: List[bytes], offset: int, array: np.ndarray, dtype: np.dtype) -> int:
    """Append one v2 section: dtype (u8) | ndim (u8) | dims (u64 LE each) |
    zero padding to the next 64-byte boundary | raw C-order payload.

    ``offset`` is the running byte offset of the whole blob (the alignment
    is absolute, so a deserializer mapping the file sees aligned payloads);
    returns the offset after this section.
    """
    data = np.ascontiguousarray(array, dtype=dtype)
    head = struct.pack("<BB", _DTYPE_CODES[np.dtype(dtype)], data.ndim)
    head += struct.pack(f"<{data.ndim}Q", *data.shape)
    parts.append(head)
    offset += len(head)
    pad = -offset % _SECTION_ALIGN
    parts.append(b"\0" * pad)
    offset += pad
    payload = data.tobytes()
    parts.append(payload)
    return offset + len(payload)


def _unpack_section(blob: Any, offset: int) -> Tuple[np.ndarray, int]:
    """Read one v2 section as a zero-copy (read-only) view over ``blob``."""
    code, ndim = struct.unpack_from("<BB", blob, offset)
    dtype = _CODE_DTYPES.get(code)
    if dtype is None:
        raise ValueError(f"unknown RoutingProgram section dtype code {code}")
    offset += 2
    shape = struct.unpack_from(f"<{ndim}Q", blob, offset)
    offset += 8 * ndim
    offset += -offset % _SECTION_ALIGN
    count = int(np.prod(shape, dtype=np.int64)) if ndim else 1
    # Pre-check the remaining bytes: frombuffer's own "buffer is smaller
    # than requested size" names neither the section nor the shortfall.
    needed = count * dtype.itemsize
    available = len(blob) - offset
    if available < needed:
        raise ValueError(
            f"truncated RoutingProgram payload: section of shape {shape} "
            f"({dtype}) needs {needed} bytes at offset {offset}, only "
            f"{max(available, 0)} remain"
        )
    array = np.frombuffer(blob, dtype=dtype, count=count, offset=offset)
    return array.reshape(shape), offset + needed


def _header(kind: str, version: int) -> bytes:
    return _MAGIC + struct.pack("<BB", version, _KIND_CODES[kind])


def _check_version(version: int) -> int:
    if version not in _SUPPORTED_VERSIONS:
        raise ValueError(f"unsupported RoutingProgram format version {version}")
    return version


# ----------------------------------------------------------------------
# the program kinds
# ----------------------------------------------------------------------
class RoutingProgram:
    """Base class of compiled routing programs (see the module docstring).

    Concrete kinds expose ``kind`` (one of :data:`KIND_NEXT_HOP`,
    :data:`KIND_HEADER_STATE`, :data:`KIND_GENERIC`), the vertex count
    ``n``, stable binary serialization and a content fingerprint.
    """

    kind: str = "?"

    @property
    def n(self) -> int:
        raise NotImplementedError

    def to_bytes(self, version: int = _FORMAT_VERSION) -> bytes:
        raise NotImplementedError

    def fingerprint(self) -> str:
        """Hex sha256 of the serialized program — process/hash-seed independent.

        Always hashes the *current* (v2) encoding, whose array dtypes are
        canonicalized from the domain sizes at encode time — so a program
        deserialized from a v1 blob (int64 arrays) fingerprints identically
        to the same program freshly compiled (domain-sized arrays).
        """
        return hashlib.sha256(self.to_bytes()).hexdigest()


@dataclass(frozen=True, eq=False)
class NextHopProgram(RoutingProgram):
    """Compiled header-constant routing: a dense ``dest -> next node`` matrix.

    ``next_node[x, dest]`` is the node a message at ``x`` destined to
    ``dest`` moves to; :data:`MISDELIVER` marks a wrong-node delivery and a
    diagonal entry ``next_node[d, d] != d`` records a broken scheme that
    forwards past its own destination (the executor lets such messages pass
    through, exactly like the legacy interpreter).
    """

    kind = KIND_NEXT_HOP

    next_node: np.ndarray

    @property
    def n(self) -> int:
        return int(self.next_node.shape[0])

    def to_bytes(self, version: int = _FORMAT_VERSION) -> bytes:
        if _check_version(version) == _V1:
            return _header(self.kind, _V1) + _pack_array_v1(self.next_node)
        head = _header(self.kind, version)
        parts = [head]
        _pack_section(parts, len(head), self.next_node, transition_dtype(self.n))
        return b"".join(parts)

    def with_next_node(self, next_node: np.ndarray) -> "NextHopProgram":
        """A new program sharing this one's shape but different transitions.

        The mutation/view entry point of the fault-injection machinery
        (:func:`repro.sim.faults.apply_faults`): masking replaces blocked
        entries with :data:`DROPPED` *without recompiling* the scheme.  The
        replacement matrix must keep the ``(n, n)`` shape — a masked view
        is still a program over the same vertex set.  The stored dtype is
        this program's own (domain-sized, see :func:`transition_dtype`);
        sentinels are negative and fit every width.
        """
        next_node = np.ascontiguousarray(next_node, dtype=self.next_node.dtype)
        if next_node.shape != self.next_node.shape:
            raise ValueError(
                f"replacement next-hop matrix has shape {next_node.shape}, "
                f"expected {self.next_node.shape}"
            )
        return NextHopProgram(next_node=next_node)


@dataclass(frozen=True, eq=False)
class HeaderStateProgram(RoutingProgram):
    """Compiled finite-header state machine of a routing function.

    States are the reachable ``(node, header)`` pairs; the transition
    relation is functional (each non-delivering state has exactly one
    successor), which is what makes both the vectorised advance (one gather
    per step) and the exact livelock analysis possible.

    Attributes
    ----------
    succ:
        ``succ[s]`` is the state the message enters after the hop taken in
        state ``s``; delivering states are self-loops.
    deliver:
        ``deliver[s]`` is whether ``P`` returns ``DELIVER`` in state ``s``
        (at :attr:`node_of` ``[s]`` — which need not be the destination).
    node_of:
        The node component of each state.
    hops_to_deliver:
        Exact number of forwarding hops from state ``s`` until the walk
        *stops*, or ``-1`` when it never does (a provable livelock).
        On a compiled (unmasked) program stopping means entering a
        delivering state; on a masked view (:func:`repro.sim.faults.apply_faults`)
        a :data:`DROPPED` transition stops the walk too, so the field is
        the exact stop analysis either way — ``-1`` always means the walk
        cycles forever.  Computed by one reverse BFS over the functional
        graph (:func:`functional_hops`).
    initial:
        ``initial[x, y]`` is the state id of ``(x, I(x, y))``; the diagonal
        is ``-1`` (no message is sent to oneself).
    headers:
        The header component of each state.  Debug metadata only: it is
        *not* serialized (headers are arbitrary hashables), so a program
        deserialized from bytes carries ``headers = None`` and executes
        identically.
    """

    kind = KIND_HEADER_STATE

    succ: np.ndarray
    deliver: np.ndarray
    node_of: np.ndarray
    hops_to_deliver: np.ndarray
    initial: np.ndarray
    headers: Optional[Tuple[Hashable, ...]] = None

    @property
    def n(self) -> int:
        return int(self.initial.shape[0])

    @property
    def num_states(self) -> int:
        """Number of reachable ``(node, header)`` states."""
        return int(self.succ.shape[0])

    def to_bytes(self, version: int = _FORMAT_VERSION) -> bytes:
        if _check_version(version) == _V1:
            return _header(self.kind, _V1) + b"".join(
                _pack_array_v1(a)
                for a in (
                    self.succ,
                    self.deliver,
                    self.node_of,
                    self.hops_to_deliver,
                    self.initial,
                )
            )
        # Canonical dtypes are recomputed from the domain sizes here, not
        # taken from the in-memory arrays: a program loaded from a v1 blob
        # (int64 arrays) re-encodes byte-identically to a fresh compile.
        sdt = transition_dtype(self.num_states)
        ndt = transition_dtype(self.n)
        head = _header(self.kind, version)
        parts = [head]
        offset = len(head)
        for array, dtype in (
            (self.succ, sdt),
            (self.deliver, np.dtype(bool)),
            (self.node_of, ndt),
            (self.hops_to_deliver, sdt),
            (self.initial, sdt),
        ):
            offset = _pack_section(parts, offset, array, dtype)
        return b"".join(parts)

    def with_transitions(
        self,
        succ: Optional[np.ndarray] = None,
        deliver: Optional[np.ndarray] = None,
        hops_to_deliver: Optional[np.ndarray] = None,
    ) -> "HeaderStateProgram":
        """A new program over the same state alphabet with edited transitions.

        The mutation/view entry point of the fault-injection machinery:
        :func:`repro.sim.faults.apply_faults` rewrites blocked successors to
        :data:`DROPPED` here instead of re-enumerating the header alphabet.
        ``hops_to_deliver`` is recomputed by default with **one**
        :func:`functional_hops` peel whose stopping set counts
        :data:`DROPPED` transitions as stops, keeping the field's
        invariant (``-1`` iff the walk provably cycles) truthful on masked
        views — the same peel the masked executor's exact hop budget reads
        back, so masking never pays a second analysis.  A caller that
        already knows the analysis is unchanged (an identity view) may
        pass it explicitly to skip the recompute.  State identity
        (``node_of``, ``initial``, debug ``headers``) is shared — a view
        edits behaviour, not the alphabet.
        """
        new_succ = (
            self.succ
            if succ is None
            else np.ascontiguousarray(succ, dtype=self.succ.dtype)
        )
        new_deliver = (
            self.deliver if deliver is None else np.ascontiguousarray(deliver, dtype=bool)
        )
        if new_succ.shape != self.succ.shape or new_deliver.shape != self.deliver.shape:
            raise ValueError(
                "replacement transition arrays must keep the state-alphabet "
                f"size {self.succ.shape[0]}"
            )
        if hops_to_deliver is None:
            hops_to_deliver = functional_hops(
                new_succ, new_deliver | (new_succ == DROPPED)
            ).astype(self.hops_to_deliver.dtype)
        elif hops_to_deliver.shape != self.hops_to_deliver.shape:
            raise ValueError(
                "replacement hops_to_deliver must keep the state-alphabet "
                f"size {self.succ.shape[0]}"
            )
        return HeaderStateProgram(
            succ=new_succ,
            deliver=new_deliver,
            node_of=self.node_of,
            hops_to_deliver=hops_to_deliver,
            initial=self.initial,
            headers=self.headers,
        )


@dataclass(frozen=True, eq=False)
class GenericProgram(RoutingProgram):
    """Explicit opt-out marker: this scheme is interpreted, not compiled.

    Executing it requires the live :class:`~repro.routing.model.RoutingFunction`
    (the engine's batched per-message interpreter); the program exists so
    the compile-once pipeline has a uniform artifact to cache and ship for
    *every* scheme, including the ones that decline compilation.
    """

    kind = KIND_GENERIC

    num_vertices: int

    @property
    def n(self) -> int:
        return int(self.num_vertices)

    def to_bytes(self, version: int = _FORMAT_VERSION) -> bytes:
        # Same <Q payload under both versions; only the version byte moves.
        return _header(self.kind, _check_version(version)) + struct.pack(
            "<Q", self.num_vertices
        )


def program_from_bytes(blob: Union[bytes, bytearray, memoryview]) -> RoutingProgram:
    """Deserialize a program produced by :meth:`RoutingProgram.to_bytes`.

    Accepts any buffer (``bytes``, a ``memoryview`` over an ``mmap``, …).
    Version 2 blobs deserialize as **zero-copy read-only views** over the
    buffer — nothing but the few header bytes is touched, so loading an
    mmapped artifact is O(1) and pages fault in lazily as the engine
    gathers.  Version 1 blobs (the historical ``<i8`` framing) still load,
    with their arrays cast down to the canonical domain-sized dtypes so a
    v1-loaded program is indistinguishable from a fresh compile.  Raises
    :class:`ValueError` on bad magic, unknown format versions or truncated
    payloads — a cached artifact is either read back exactly or rejected
    loudly (callers degrade to recompilation).
    """
    if bytes(blob[: len(_MAGIC)]) != _MAGIC:
        raise ValueError("not a serialized RoutingProgram (bad magic)")
    try:
        version, code = struct.unpack_from("<BB", blob, len(_MAGIC))
        if version not in _SUPPORTED_VERSIONS:
            raise ValueError(f"unsupported RoutingProgram format version {version}")
        kind = _CODE_KINDS.get(code)
        offset = len(_MAGIC) + 2
        unpack = _unpack_array_v1 if version == _V1 else _unpack_section
        if kind == KIND_GENERIC:
            (n,) = struct.unpack_from("<Q", blob, offset)
            return GenericProgram(num_vertices=int(n))
        if kind == KIND_NEXT_HOP:
            next_node, offset = unpack(blob, offset)
            if version == _V1:
                next_node = next_node.astype(transition_dtype(next_node.shape[0]))
            return NextHopProgram(next_node=next_node)
        if kind == KIND_HEADER_STATE:
            succ, offset = unpack(blob, offset)
            deliver, offset = unpack(blob, offset)
            node_of, offset = unpack(blob, offset)
            hops, offset = unpack(blob, offset)
            initial, offset = unpack(blob, offset)
            if version == _V1:
                sdt = transition_dtype(succ.shape[0])
                succ = succ.astype(sdt)
                hops = hops.astype(sdt)
                initial = initial.astype(sdt)
                node_of = node_of.astype(transition_dtype(initial.shape[0]))
            return HeaderStateProgram(
                succ=succ,
                deliver=deliver.astype(bool) if version == _V1 else deliver,
                node_of=node_of,
                hops_to_deliver=hops,
                initial=initial,
            )
    except struct.error as exc:
        raise ValueError(f"truncated RoutingProgram payload: {exc}") from exc
    raise ValueError(f"unknown RoutingProgram kind code {code}")


def save_program(program: RoutingProgram, path: Union[str, Path]) -> Path:
    """Write ``program`` to ``path`` in the current (v2, mmap-able) format.

    The write is atomic (temp file + ``os.replace`` in the same directory),
    so a concurrent :func:`load_program` never observes a half-written
    artifact — the contract the sharded runner's program store relies on.
    """
    path = Path(path)
    blob = program.to_bytes()
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    tmp.parent.mkdir(parents=True, exist_ok=True)
    try:
        tmp.write_bytes(blob)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    return path


def load_program(
    path: Union[str, Path], expected_fingerprint: Optional[str] = None
) -> RoutingProgram:
    """Load a saved program as zero-copy views over an ``mmap`` of ``path``.

    O(1) regardless of program size: only the header bytes are read
    eagerly; transition arrays are read-only views whose pages fault in on
    first access (and are shared between worker processes mapping the same
    file).  The mapping stays alive as long as any array referencing it
    does.  Raises :class:`OSError` when the file is unreadable and
    :class:`ValueError` when its content is not a valid program (including
    the empty file an interrupted writer can never leave behind, thanks to
    the atomic :func:`save_program` — but a foreign truncated file is still
    rejected loudly).

    ``expected_fingerprint`` makes the load *store-aware*: a
    content-addressed store names each object file by the program's own
    :meth:`~RoutingProgram.fingerprint`, so passing the address re-hashes
    the decoded content and raises :class:`ValueError` on a mismatch —
    bytes flipped *within* valid framing fail the load instead of
    masquerading as the addressed program (the integrity half of
    :meth:`repro.store.ProgramStore.get`'s ``verify=True`` gate; the
    static-soundness half is :func:`repro.routing.verify.verify_program`).
    """
    with open(path, "rb") as handle:
        try:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except ValueError as exc:  # zero-length file cannot be mapped
            raise ValueError(f"not a serialized RoutingProgram: {path} is empty") from exc
    program = program_from_bytes(memoryview(mapped))
    if expected_fingerprint is not None:
        actual = program.fingerprint()
        if actual != expected_fingerprint:
            raise ValueError(
                f"content-address mismatch for {path}: expected "
                f"{expected_fingerprint[:12]}..., decoded {actual[:12]}..."
            )
    return program


def functional_hops(succ: np.ndarray, stopping: np.ndarray) -> np.ndarray:
    """Exact hops from each state of a functional graph to a stopping state.

    ``succ`` is a functional transition array (each state has exactly one
    successor); ``stopping`` marks the absorbing states.  Returns, per
    state, the number of forwarding hops until a stopping state is entered
    (``0`` at the stopping states themselves) or ``-1`` when none is ever
    reached — the walk provably cycles.  Computed by peeling the graph
    backwards from the stopping states, one vectorised round per hop count.

    A :data:`DROPPED` successor (a masked transition, see
    :func:`repro.sim.faults.apply_faults`) is treated as absorbing and
    *non*-stopping: the walk ends off-program there, so unless the state is
    itself marked stopping it reports ``-1``.  This is what both the
    compile-time ``hops_to_deliver`` analysis and the masked executors'
    exact hop budgets (stopping = delivering-or-dropping) share.
    """
    succ = np.asarray(succ)
    if not np.issubdtype(succ.dtype, np.signedinteger):
        succ = succ.astype(np.int64)
    stopping = np.asarray(stopping, dtype=bool)
    # Self-loop the masked transitions: an absorbing non-stopping state
    # keeps hops = NO_ROUTE through every peeling round, which is the
    # semantics we want for walks that fall off the program at a fault.
    # The sentinel scan runs once and the copy happens only when a
    # sentinel actually exists — the unmasked common case peels the input
    # array directly, in its own (domain-sized) dtype: hop counts are
    # bounded by the state count, so the narrowest dtype that indexes the
    # states also holds every finite hop value, and the sentinels are
    # negative at every width.
    dropped = succ == DROPPED
    if succ.size and dropped.any():
        succ = np.where(dropped, np.arange(succ.shape[0], dtype=succ.dtype), succ)
    zero = succ.dtype.type(0)
    hops = np.where(stopping, zero, succ.dtype.type(NO_ROUTE))
    while True:
        downstream = hops[succ]
        newly = (hops < zero) & (downstream >= zero)
        if not newly.any():
            break
        hops[newly] = downstream[newly] + 1
    return hops


# ----------------------------------------------------------------------
# lowering
# ----------------------------------------------------------------------
def lower(rf: RoutingFunction, max_states: Optional[int] = None) -> RoutingProgram:
    """Lower ``rf`` to the program kind it declares via ``program_kind()``.

    This is the dispatcher behind
    :meth:`repro.routing.model.RoutingFunction.compile_program`.  A
    header-state lowering whose ``can_vectorize`` promise breaks raises
    :class:`HeaderStateExplosionError`; callers wanting the engine's
    auto-fallback catch it and use a :class:`GenericProgram` instead.
    """
    kind = rf.program_kind()
    if kind == KIND_NEXT_HOP:
        return lower_next_hop(rf)
    if kind == KIND_HEADER_STATE:
        return lower_header_state(rf, max_states=max_states)
    if kind == KIND_GENERIC:
        return GenericProgram(num_vertices=rf.graph.n)
    raise ValueError(f"{type(rf).__name__}.program_kind() returned unknown kind {kind!r}")


def compile_scheme_program(
    scheme: RoutingScheme, graph: PortLabeledGraph, max_states: Optional[int] = None
) -> RoutingProgram:
    """Build ``scheme`` on a copy of ``graph`` and lower the result.

    The scheme-level entry point of the compile-once pipeline: the graph is
    copied because some schemes (the complete-graph labellings) relabel
    ports in place.  A ``build`` refusal is re-raised as
    :class:`~repro.routing.model.SchemeInapplicableError` so grid drivers
    can skip the cell without masking lowering diagnostics.
    """
    try:
        rf = scheme.build(graph.copy())
    except ValueError as exc:
        raise SchemeInapplicableError(str(exc)) from exc
    return rf.compile_program(max_states=max_states)


def lower_next_hop(rf: RoutingFunction) -> NextHopProgram:
    """Compile the per-node ``dest -> port`` maps into a next-hop program.

    Returns the ``(n, n)`` domain-dtype matrix ``next_node`` (see
    :func:`transition_dtype`) with
    ``next_node[x, dest]`` the node the message moves to, or
    :data:`MISDELIVER` when the local function delivers at the wrong node.
    A diagonal entry ``next_node[dest, dest] = dest`` means the scheme
    delivers at the destination (every correct scheme); a broken scheme
    that keeps forwarding there has the onward neighbour recorded instead,
    so the simulated message passes through exactly as the legacy
    interpreter would.  Raises :class:`ValueError` on invalid ports, like
    the legacy simulator (but eagerly, for every pair at once).
    """
    graph = rf.graph
    n = graph.n
    next_node = np.empty((n, n), dtype=transition_dtype(n))
    diag = np.arange(n)
    next_node[diag, diag] = diag
    if n < 2:
        return NextHopProgram(next_node=next_node)
    indptr, indices = graph.adjacency_arrays()
    degrees = np.diff(indptr)

    if type(rf).port is DestinationBasedRoutingFunction.port and isinstance(
        rf, TableRoutingFunction
    ):
        # Tables are already the dest -> port map; skip the port() dispatch.
        # An unvalidated table (validate=False) may be malformed, so check
        # completeness eagerly with a specific error instead of corrupting
        # the diagonal or reporting a nonsensical port.
        for x in range(n):
            table = rf.local_map(x)
            if x in table:
                raise ValueError(f"routing table of vertex {x} contains a self-entry")
            if len(table) != n - 1:
                raise ValueError(
                    f"routing table of vertex {x} has {len(table)} entries, "
                    f"expected {n - 1} (one per other vertex)"
                )
            dests = np.fromiter(table.keys(), count=len(table), dtype=np.int64)
            ports = np.fromiter(table.values(), count=len(table), dtype=np.int64)
            invalid = (ports < 1) | (ports > degrees[x])
            if invalid.any():
                raise ValueError(
                    f"routing function used invalid port {int(ports[invalid][0])} "
                    f"at vertex {x} (degree {degrees[x]})"
                )
            next_node[x, dests] = indices[indptr[x] + ports - 1]
        return NextHopProgram(next_node=next_node)

    # Skipping P at the destination is only sound when the base
    # destination-based implementation (which hard-codes DELIVER there) is
    # in force; a subclass overriding port() gets evaluated at its own
    # destination so a broken forward-past-dest decision surfaces exactly
    # as in the legacy interpreter.
    delivers_at_dest = type(rf).port is DestinationBasedRoutingFunction.port
    for dest in range(n):
        header = rf.initial_header((dest + 1) % n, dest)
        for x in range(n):
            if x == dest and delivers_at_dest:
                continue  # P hard-codes DELIVER at the destination
            port = rf.port(x, header)
            if port == DELIVER:
                next_node[x, dest] = dest if x == dest else MISDELIVER
                continue
            if not 1 <= port <= degrees[x]:
                raise ValueError(
                    f"routing function used invalid port {port} at vertex {x} "
                    f"(degree {degrees[x]})"
                )
            next_node[x, dest] = indices[indptr[x] + port - 1]
    return NextHopProgram(next_node=next_node)


def lower_header_state(
    rf: RoutingFunction, max_states: Optional[int] = None
) -> HeaderStateProgram:
    """Enumerate the reachable header alphabet and compile transition arrays.

    Starting from the ``n * (n - 1)`` initial states ``(x, I(x, y))``, the
    closure under ``(node, h) -> (neighbour at P(node, h), H(node, h))`` is
    explored once; every state pays exactly one ``P`` (and at most one
    ``H``) evaluation, after which simulation is pure integer indexing.
    ``max_states`` caps the exploration (default ``1024 + 64 * n^2``)
    against schemes whose ``can_vectorize`` promise is broken — exceeding
    it raises :class:`HeaderStateExplosionError`.  Invalid ports raise the
    legacy :class:`ValueError`.
    """
    graph = rf.graph
    n = graph.n
    if max_states is None:
        max_states = 1024 + 64 * n * n

    state_id: Dict[Tuple[int, Hashable], int] = {}
    nodes: List[int] = []
    headers: List[Hashable] = []

    def intern(node: int, header: Hashable) -> int:
        key = (node, header)
        sid = state_id.get(key)
        if sid is None:
            sid = len(nodes)
            if sid >= max_states:
                raise HeaderStateExplosionError(
                    f"{type(rf).__name__} reached {max_states} (node, header) states "
                    f"on a {n}-vertex graph; its can_vectorize promise of a finite "
                    "header alphabet looks broken — use method='generic'"
                )
            state_id[key] = sid
            nodes.append(node)
            headers.append(header)
        return sid

    # Interned ids are assigned while states are still being discovered, so
    # the scratch matrix is int64; it is cast to the state-domain dtype
    # once the alphabet is closed (below).
    initial = np.full((n, n), -1, dtype=np.int64)
    for dest in range(n):
        for src in range(n):
            if src != dest:
                initial[src, dest] = intern(src, rf.initial_header(src, dest))

    port_fn = rf.port
    next_header = rf.next_header
    neighbor_at_port = graph.neighbor_at_port
    succ: List[int] = []
    deliver: List[bool] = []
    idx = 0
    while idx < len(nodes):  # intern() appends newly discovered states
        node, header = nodes[idx], headers[idx]
        port = port_fn(node, header)
        if port == DELIVER:
            succ.append(idx)
            deliver.append(True)
        else:
            try:
                nxt = neighbor_at_port(node, port)
            except KeyError as exc:
                raise ValueError(
                    f"routing function used invalid port {port} at vertex {node} "
                    f"(degree {graph.degree(node)})"
                ) from exc
            succ.append(intern(nxt, next_header(node, header)))
            deliver.append(False)
        idx += 1

    sdt = transition_dtype(len(nodes))
    succ_arr = np.asarray(succ, dtype=sdt)
    deliver_arr = np.asarray(deliver, dtype=bool)
    node_arr = np.asarray(nodes, dtype=transition_dtype(n))

    return HeaderStateProgram(
        succ=succ_arr,
        deliver=deliver_arr,
        node_of=node_arr,
        # Exact hops-to-delivery over the functional transition graph;
        # states that never reach a delivering state cycle forever — the
        # provable livelocks.  The peel runs directly in the state-domain
        # dtype (hops are bounded by the state count).
        hops_to_deliver=functional_hops(succ_arr, deliver_arr).astype(sdt),
        initial=initial.astype(sdt),
        headers=tuple(headers),
    )


# ----------------------------------------------------------------------
# incremental deltas (dynamic topologies / churn workload)
# ----------------------------------------------------------------------

#: :attr:`DeltaResult.mode` values.  ``unchanged`` — the two snapshots are
#: identical (same edges *and* port labellings) and the input program is
#: returned as-is; ``patched`` — only the dirty ``(node, dest)`` entries
#: were recomputed; ``recompiled`` — the delta fell back to a full
#: :func:`compile_scheme_program` (non-incremental scheme/program kind, a
#: vertex-count change, or a dirty set above the threshold).
DELTA_UNCHANGED = "unchanged"
DELTA_PATCHED = "patched"
DELTA_RECOMPILED = "recompiled"


@dataclass(frozen=True, eq=False)
class DeltaResult:
    """Outcome of :func:`apply_delta`: the updated program plus accounting.

    Attributes
    ----------
    program:
        The program valid for ``graph_after`` — patched in place of the
        dirty entries or freshly recompiled, but in either case
        fingerprint/dtype/byte-layout identical to
        ``compile_scheme_program(scheme, graph_after)`` (masked with the
        same faults when ``faults`` was passed).
    mode:
        One of :data:`DELTA_UNCHANGED` / :data:`DELTA_PATCHED` /
        :data:`DELTA_RECOMPILED`.
    dirty_entries:
        Number of off-diagonal ``(node, dest)`` entries invalidated by the
        topology change (0 for ``unchanged``; the full off-diagonal count
        for ``recompiled`` fallbacks triggered by the threshold is *not*
        substituted — the field always reports the measured dirty set, or
        ``-1`` when the fallback fired before one was measured).
    dirty_destinations:
        Number of destinations with at least one dirty entry — the
        affected-destination frontier the invalidation propagated from.
    reconverge_rounds:
        Vectorised relaxation sweeps until the incremental distance update
        reached its fixpoint (0 when no edges were added or the fallback
        fired) — the "steps to reconvergence" of the routing state.
    recomputed_columns:
        Destination columns whose distances were rebuilt by a targeted BFS
        because a removed edge lay on one of their shortest paths.
    n:
        Vertex count of the snapshots.
    dist_after:
        The incrementally maintained distance matrix of ``graph_after``
        (``None`` on non-incremental paths) — chained deltas pass it back
        as the next call's ``dist_before`` so a whole churn trace pays for
        one full distance matrix at most.
    """

    program: RoutingProgram
    mode: str
    dirty_entries: int
    dirty_destinations: int
    reconverge_rounds: int
    recomputed_columns: int
    n: int
    dist_after: Optional[np.ndarray] = None

    @property
    def dirty_fraction(self) -> float:
        """Dirty share of the ``n * (n - 1)`` off-diagonal entries."""
        total = self.n * (self.n - 1)
        if total <= 0 or self.dirty_entries < 0:
            return 0.0
        return self.dirty_entries / total


#: Relaxation sentinel standing in for "unreachable": larger than any
#: real distance (paths have < 2^40 hops) yet far from int64 overflow
#: when two of them and a hop are summed.
_DIST_INF = np.int64(1) << 40

#: Matches :data:`repro.graphs.shortest_paths.UNREACHABLE` without the
#: import cycle (shortest_paths is graph-layer, this module routing-layer;
#: both pin the value in their tests).
_UNREACHABLE = -1


def _bfs_columns(graph: PortLabeledGraph, sources: np.ndarray) -> np.ndarray:
    """BFS distance rows from ``sources``, batched through scipy when present.

    Returns an ``(len(sources), n)`` int64 array with ``_UNREACHABLE`` for
    unreachable pairs.  One scipy call replaces ``len(sources)`` Python-level
    BFS traversals — the difference between a removal delta that beats a
    recompile and one that merely matches it — with the pure-Python
    per-column walk kept as the dependency-free fallback.
    """
    try:
        from scipy.sparse.csgraph import dijkstra
    except ImportError:
        from repro.graphs.shortest_paths import bfs_distances

        return np.stack(
            [
                np.asarray(bfs_distances(graph, int(t)), dtype=np.int64)
                for t in sources
            ]
        )
    raw = dijkstra(graph.csr_adjacency(), unweighted=True, indices=sources)
    raw = np.atleast_2d(raw)
    out = np.full(raw.shape, _UNREACHABLE, dtype=np.int64)
    finite = np.isfinite(raw)
    out[finite] = raw[finite].astype(np.int64)
    return out


def incremental_distance_matrix(
    graph_after: PortLabeledGraph,
    dist_before: np.ndarray,
    added: List[Tuple[int, int]],
    removed: List[Tuple[int, int]],
) -> Tuple[np.ndarray, int, int]:
    """Distances of ``graph_after`` maintained incrementally from a snapshot.

    ``dist_before`` is the all-pairs matrix of the *previous* snapshot;
    ``added``/``removed`` are the undirected edge diffs taking it to
    ``graph_after``.  Returns ``(dist_after, reconverge_rounds,
    recomputed_columns)``.

    The update is exact and change-proportional in the common churn regime:

    * **Removals** invalidate only the destination columns some removed
      edge had a shortest path through (``|d(u, t) - d(v, t)| == 1`` — the
      affected-destination frontier); those columns are rebuilt by one
      targeted BFS each on ``graph_after``.  Every other column is provably
      untouched by the removal (all its shortest-path DAGs survive).
    * **Additions** then run a vectorised relaxation ``d(x, y) <- min(d(x,
      y), d(x, u) + 1 + d(v, y))`` over the added edges to a fixpoint; the
      sweep count is the steps-to-reconvergence metric (a shortest path
      uses each added edge at most once, so it converges in at most
      ``len(added)`` sweeps).
    """
    n = graph_after.n
    d = np.array(dist_before, dtype=np.int64, copy=True)
    recomputed = 0
    if removed:
        affected = np.zeros(n, dtype=bool)
        for u, v in removed:
            affected |= np.abs(d[u, :] - d[v, :]) == 1
        sources = np.nonzero(affected)[0]
        if sources.size:
            cols = _bfs_columns(graph_after, sources)
            d[:, sources] = cols.T
            d[sources, :] = cols
            recomputed = int(sources.size)
    rounds = 0
    if added:
        work = np.where(d == _UNREACHABLE, _DIST_INF, d)
        while True:
            progressed = False
            for u, v in added:
                for a, b in ((u, v), (v, u)):
                    cand = work[:, a, None] + 1 + work[None, b, :]
                    better = cand < work
                    if better.any():
                        progressed = True
                        work[better] = cand[better]
            if not progressed:
                break
            rounds += 1
        d = np.where(work >= _DIST_INF, np.int64(_UNREACHABLE), work)
    return d, rounds, recomputed


def _port_dirty_vertices(
    graph_before: PortLabeledGraph, graph_after: PortLabeledGraph
) -> List[int]:
    """Vertices whose port labelling differs between the two snapshots.

    Computed by direct per-vertex comparison rather than from the edge
    diff: robust to any relabelling convention (a churn mutation shifts
    ports only at the touched endpoints, but an adversarial caller may
    relabel anywhere, and a relabel changes every tie-break at that
    vertex).
    """
    return [
        x
        for x in range(graph_before.n)
        if graph_before.port_map(x) != graph_after.port_map(x)
    ]


def _assert_patched_sound(
    patched: "NextHopProgram", dist_after: np.ndarray, faults: "Optional[FaultSet]"
) -> None:
    """Statically prove a delta-patched table program correct (or raise).

    The soundness contract of a shortest-path table program over
    ``graph_after``: every feasible pair delivers in exactly the true
    distance, and under a fault mask the only other possible fate is a
    drop at a masked transition.  Proven by the static verifier — no
    recompile, no simulation.  Deferred import: :mod:`repro.routing.verify`
    imports this module.
    """
    from repro.routing.verify import (
        VERDICT_DELIVERED,
        VERDICT_DROPPED,
        VERDICT_INFEASIBLE,
        ProgramVerificationError,
        verify_program,
    )

    n = patched.n
    alive = faults.alive_mask(n) if faults is not None else None
    report = verify_program(patched, alive=alive, strict=True)
    allowed = (VERDICT_DELIVERED, VERDICT_DROPPED) if faults is not None else (
        VERDICT_DELIVERED,
    )
    feasible = report.outcome != VERDICT_INFEASIBLE
    bad = feasible.copy()
    for code in allowed:
        bad &= report.outcome != code
    delivered = report.outcome == VERDICT_DELIVERED
    wrong_hops = delivered & (report.hops != dist_after)
    if bad.any() or wrong_hops.any():
        if bad.any():
            xs, ys = np.nonzero(bad)
            x, y = int(xs[0]), int(ys[0])
            from repro.routing.verify import VERDICT_NAMES

            detail = (
                f"pair {x} -> {y} is "
                f"{VERDICT_NAMES[int(report.outcome[x, y])]}"
            )
        else:
            xs, ys = np.nonzero(wrong_hops)
            x, y = int(xs[0]), int(ys[0])
            detail = (
                f"pair {x} -> {y} delivers in {int(report.hops[x, y])} hops, "
                f"distance is {int(dist_after[x, y])}"
            )
        raise ProgramVerificationError(
            f"delta-patched program failed the static soundness proof: "
            f"{detail} (a shortest-path table program must deliver every "
            f"feasible pair at exact distance"
            + (" or drop it at a fault)" if faults is not None else ")")
        )


def apply_delta(
    program: RoutingProgram,
    graph_before: PortLabeledGraph,
    graph_after: PortLabeledGraph,
    scheme: RoutingScheme,
    *,
    dirty_threshold: float = 0.5,
    dist_before: Optional[np.ndarray] = None,
    faults: "Optional[FaultSet]" = None,
    static_check: bool = False,
) -> DeltaResult:
    """Update a compiled program across a topology change without recompiling.

    ``program`` must be ``compile_scheme_program(scheme, graph_before)`` —
    or, when ``faults`` is passed, that program masked with the *same*
    fault set (``apply_faults(..., graph_before, faults)``); the result is
    then masked too, so deltas compose with the fault-injection workload
    without ever unmasking.  Returns a :class:`DeltaResult` whose program
    is **indistinguishable from a fresh compile at** ``graph_after`` —
    same arrays, same domain dtypes, same v2 byte layout, same
    :meth:`~RoutingProgram.fingerprint` (the differential contract
    ``tests/test_churn.py`` pins across the registry grid).

    The incremental fast path covers shortest-path table schemes lowered
    to :class:`NextHopProgram` (every tie-break rule).  The dirty set is
    the union of

    * all entries of vertices whose **port labelling** changed (an
      edge insertion/removal shifts ports at its endpoints, and ports are
      tie-break keys), and
    * entries ``(x, dest)`` where the **distance** to ``dest`` changed at
      ``x`` or at any neighbour of ``x`` — the affected-destination
      frontier propagated one hop (the next-hop choice reads exactly those
      distances).

    Only dirty entries are recomputed (replicating
    :func:`repro.routing.tables.build_next_hop_matrix`'s tie-break
    vectorised per row); distances themselves are maintained by
    :func:`incremental_distance_matrix`.  Everything else — other schemes,
    header-state/generic programs, vertex-count changes, dirty sets above
    ``dirty_threshold`` (a fraction of the off-diagonal entries), or a
    disconnecting change — falls back to a full recompile with identical
    semantics (a disconnected ``graph_after`` raises
    :class:`~repro.routing.model.SchemeInapplicableError` exactly like
    ``scheme.build``).

    ``static_check=True`` proves the *patched* program sound before
    returning it, using the static verifier instead of a byte-comparison
    against a throwaway recompile: a shortest-path table program must
    deliver every feasible pair in exactly ``dist_after`` hops — and under
    ``faults`` the only other permitted fate is a drop at a masked
    transition (tables can neither misdeliver nor livelock).  A violation
    raises :class:`~repro.routing.verify.ProgramVerificationError` naming
    the first offending pair; the recompile/unchanged paths return fresh or
    untouched compiles and are not re-proven.
    """
    from repro.routing.tables import ShortestPathTableScheme

    if graph_before.n != program.n:
        raise ValueError(
            f"program was compiled for n={program.n} but graph_before has "
            f"n={graph_before.n}"
        )

    def _recompiled() -> DeltaResult:
        fresh = compile_scheme_program(scheme, graph_after)
        if faults is not None:
            from repro.sim.faults import apply_faults

            fresh = apply_faults(fresh, graph_after, faults)
        return DeltaResult(
            program=fresh,
            mode=DELTA_RECOMPILED,
            dirty_entries=-1,
            dirty_destinations=-1,
            reconverge_rounds=0,
            recomputed_columns=0,
            n=graph_after.n,
        )

    if graph_before == graph_after:
        return DeltaResult(
            program=program,
            mode=DELTA_UNCHANGED,
            dirty_entries=0,
            dirty_destinations=0,
            reconverge_rounds=0,
            recomputed_columns=0,
            n=graph_after.n,
        )

    if (
        graph_before.n != graph_after.n
        or not isinstance(scheme, ShortestPathTableScheme)
        or not isinstance(program, NextHopProgram)
    ):
        return _recompiled()

    n = graph_after.n
    before_edges = set(graph_before.edges())
    after_edges = set(graph_after.edges())
    added = sorted(after_edges - before_edges)
    removed = sorted(before_edges - after_edges)

    if dist_before is None:
        from repro.graphs.shortest_paths import distance_matrix

        dist_before = distance_matrix(graph_before)
    dist_after, rounds, recomputed = incremental_distance_matrix(
        graph_after, dist_before, added, removed
    )
    if n > 1 and (dist_after == _UNREACHABLE).any():
        # The change disconnected the graph: a fresh build would refuse, and
        # the delta must be indistinguishable from it.
        return _recompiled()

    changed = dist_after != dist_before
    dirty = np.array(changed)
    if changed.any():
        # One-hop propagation: x's choice for dest reads the distances of
        # its neighbours, so a change at v invalidates every neighbour of v.
        dirty |= np.asarray(
            (graph_after.csr_adjacency() @ changed.astype(np.int8)) > 0
        )
    port_dirty = _port_dirty_vertices(graph_before, graph_after)
    if port_dirty:
        dirty[port_dirty, :] = True
    np.fill_diagonal(dirty, False)

    dirty_entries = int(dirty.sum())
    total = n * (n - 1)
    if total and dirty_entries > dirty_threshold * total:
        return _recompiled()
    dirty_destinations = int(dirty.any(axis=0).sum())

    tie_break = scheme.tie_break
    next_node = np.array(program.next_node, copy=True)  # mmap views are read-only
    indptr, indices = graph_after.adjacency_arrays()
    for x in np.nonzero(dirty.any(axis=1))[0]:
        dests = np.nonzero(dirty[x])[0]
        nbrs = indices[indptr[x] : indptr[x + 1]]  # port order: port k+1 = nbrs[k]
        on_shortest = dist_after[nbrs[:, None], dests[None, :]] == (
            dist_after[x, dests] - 1
        )
        if tie_break == "lowest_port":
            pick = on_shortest.argmax(axis=0)
        elif tie_break == "highest_port":
            pick = on_shortest.shape[0] - 1 - on_shortest[::-1].argmax(axis=0)
        elif tie_break == "lowest_neighbor":
            pick = np.where(on_shortest, nbrs[:, None], np.iinfo(np.int64).max).argmin(
                axis=0
            )
        else:  # pragma: no cover - guarded by ShortestPathTableScheme
            raise ValueError(f"unknown tie break rule {tie_break!r}")
        next_node[x, dests] = nbrs[pick].astype(next_node.dtype)

    patched = program.with_next_node(next_node)
    if faults is not None:
        # Masking is value-based and idempotent: unmasked entries equal to a
        # fresh compile mask identically, already-DROPPED entries stay
        # DROPPED, and freshly patched entries get masked here — so this is
        # exactly mask-after-recompile without the recompile.
        from repro.sim.faults import apply_faults

        patched = apply_faults(patched, graph_after, faults)
    if static_check:
        _assert_patched_sound(patched, dist_after, faults)
    return DeltaResult(
        program=patched,
        mode=DELTA_PATCHED,
        dirty_entries=dirty_entries,
        dirty_destinations=dirty_destinations,
        reconverge_rounds=rounds,
        recomputed_columns=recomputed,
        n=n,
        dist_after=dist_after,
    )
