"""Route simulation, stretch factor and routing-function verification.

The stretch factor of a routing function ``R`` on a graph ``G`` is

.. math::

    s(R, G) = \\max_{x \\neq y} \\frac{d_R(x, y)}{d_G(x, y)}

where ``d_R(x, y)`` is the length of the routing path produced by ``R`` and
``d_G`` the graph distance.  This module simulates the message forwarding
process defined by ``(I, H, P)`` hop by hop, detects loops, and computes
exact stretch factors used throughout the tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

import numpy as np

from repro.graphs.digraph import PortLabeledGraph
from repro.graphs.shortest_paths import UNREACHABLE, distance_matrix
from repro.routing.model import DELIVER, RoutingFunction

__all__ = [
    "RouteResult",
    "RoutingLoopError",
    "route",
    "all_pairs_routing_lengths",
    "stretch_of_pair",
    "stretch_factor",
    "verify_routing_function",
]


class RoutingLoopError(RuntimeError):
    """Raised when a simulated route exceeds the allowed hop budget."""

    def __init__(self, source: int, dest: int, partial_path: List[int]) -> None:
        super().__init__(
            f"routing from {source} to {dest} did not terminate; partial path {partial_path[:20]}..."
        )
        self.source = source
        self.dest = dest
        self.partial_path = partial_path


@dataclass(frozen=True)
class RouteResult:
    """Outcome of simulating one message.

    Attributes
    ----------
    path:
        Sequence of visited vertices, starting at the source and ending at
        the node where delivery happened.
    headers:
        The header carried on each hop (``headers[i]`` is the header with
        which ``path[i]`` processed the message).
    delivered:
        Whether delivery happened at the intended destination.
    """

    path: Tuple[int, ...]
    headers: Tuple[Hashable, ...]
    delivered: bool

    @property
    def length(self) -> int:
        """Number of edges traversed."""
        return len(self.path) - 1


def route(
    rf: RoutingFunction,
    source: int,
    dest: int,
    max_hops: Optional[int] = None,
) -> RouteResult:
    """Simulate the forwarding of one message from ``source`` to ``dest``.

    Parameters
    ----------
    max_hops:
        Hop budget before declaring a routing loop; defaults to ``4 * n``.

    Raises
    ------
    RoutingLoopError
        If the message is still in flight after ``max_hops`` hops.
    ValueError
        If the routing function emits an invalid port.
    """
    graph = rf.graph
    if source == dest:
        return RouteResult(path=(source,), headers=(None,), delivered=True)
    if max_hops is None:
        max_hops = 4 * max(graph.n, 1)
    header = rf.initial_header(source, dest)
    node = source
    path = [source]
    headers: List[Hashable] = [header]
    for _ in range(max_hops):
        port = rf.port(node, header)
        if port == DELIVER:
            return RouteResult(tuple(path), tuple(headers), delivered=(node == dest))
        try:
            nxt = graph.neighbor_at_port(node, port)
        except KeyError as exc:
            raise ValueError(
                f"routing function used invalid port {port} at vertex {node} "
                f"(degree {graph.degree(node)})"
            ) from exc
        header = rf.next_header(node, header)
        node = nxt
        path.append(node)
        headers.append(header)
    raise RoutingLoopError(source, dest, path)


def all_pairs_routing_lengths(
    rf: RoutingFunction, max_hops: Optional[int] = None
) -> np.ndarray:
    """Matrix of routing-path lengths ``d_R(x, y)`` for all ordered pairs.

    The diagonal is 0.  Pairs whose message is not delivered at the correct
    destination raise :class:`ValueError`.
    """
    n = rf.graph.n
    lengths = np.zeros((n, n), dtype=np.int64)
    for x in range(n):
        for y in range(n):
            if x == y:
                continue
            result = route(rf, x, y, max_hops=max_hops)
            if not result.delivered:
                raise ValueError(f"message from {x} to {y} delivered at {result.path[-1]}")
            lengths[x, y] = result.length
    return lengths


def stretch_of_pair(
    rf: RoutingFunction, source: int, dest: int, dist: Optional[np.ndarray] = None
) -> Fraction:
    """Exact stretch ``d_R(source, dest) / d_G(source, dest)`` as a fraction."""
    if source == dest:
        raise ValueError("stretch is undefined for source == dest")
    if dist is None:
        dist = distance_matrix(rf.graph)
    d = int(dist[source, dest])
    if d == UNREACHABLE:
        raise ValueError(f"vertices {source} and {dest} are not connected")
    result = route(rf, source, dest)
    if not result.delivered:
        raise ValueError(f"message from {source} to {dest} delivered at {result.path[-1]}")
    return Fraction(result.length, d)


def stretch_factor(
    rf: RoutingFunction,
    dist: Optional[np.ndarray] = None,
    pairs: Optional[Iterable[Tuple[int, int]]] = None,
) -> Fraction:
    """Exact stretch factor ``s(R, G)`` over all (or the given) ordered pairs.

    Returns ``Fraction(1)`` on graphs with fewer than two vertices.
    """
    graph = rf.graph
    if graph.n < 2:
        return Fraction(1)
    if dist is None:
        dist = distance_matrix(graph)
    worst = Fraction(0)
    if pairs is None:
        pairs = ((x, y) for x in range(graph.n) for y in range(graph.n) if x != y)
    for x, y in pairs:
        s = stretch_of_pair(rf, x, y, dist=dist)
        if s > worst:
            worst = s
    return worst if worst > 0 else Fraction(1)


def verify_routing_function(
    rf: RoutingFunction,
    max_stretch: Optional[float] = None,
    dist: Optional[np.ndarray] = None,
) -> Fraction:
    """Check validity (every pair is delivered) and optionally a stretch bound.

    Returns the exact stretch factor.  Raises :class:`ValueError` when a pair
    is misdelivered or the measured stretch exceeds ``max_stretch``
    (comparisons use exact rational arithmetic against the float bound).
    """
    graph = rf.graph
    if dist is None:
        dist = distance_matrix(graph)
    s = stretch_factor(rf, dist=dist)
    if max_stretch is not None and float(s) > max_stretch + 1e-12:
        raise ValueError(f"stretch factor {float(s):.4f} exceeds the required bound {max_stretch}")
    return s
