"""Spanner + landmark composition: the large-stretch end of Table 1.

All the large-stretch universal schemes referenced in Table 1 (Peleg–Upfal,
Awerbuch–Bar-Noy–Linial–Peleg, Awerbuch–Peleg) trade stretch for memory by
routing inside a sparse substructure.  This module composes the two
substrates already implemented here:

1. build a greedy ``t``-spanner ``H`` of the network (sparse: low degrees,
   few arcs — :mod:`repro.routing.spanner`);
2. run the Cowen landmark scheme *inside* ``H``
   (:mod:`repro.routing.landmark`), which multiplies the stretch by at most
   3.

The resulting universal scheme has worst-case stretch ``3 t`` and per-router
memory ``O((|L| + |C_H(u)|) log n)`` where clusters are computed in the
sparser graph; the measured trade-off curve is experiment E8.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from repro.graphs.digraph import PortLabeledGraph
from repro.routing.landmark import CowenLandmarkScheme, LandmarkAddress, LandmarkRoutingFunction
from repro.routing.model import BaseRoutingScheme, DELIVER, LabeledRoutingFunction
from repro.routing.spanner import greedy_spanner

__all__ = [
    "HierarchicalSpannerRoutingFunction",
    "RewritingHierarchicalSpannerRoutingFunction",
    "HierarchicalSpannerScheme",
]


class HierarchicalSpannerRoutingFunction(LabeledRoutingFunction):
    """Routing function of the spanner+landmark composition.

    Wraps a :class:`~repro.routing.landmark.LandmarkRoutingFunction` built on
    the spanner and translates every forwarding decision back to the port
    labelling of the original network (the spanner is a subgraph, so every
    spanner arc exists in the network).
    """

    def __init__(
        self,
        graph: PortLabeledGraph,
        spanner: PortLabeledGraph,
        inner: LandmarkRoutingFunction,
    ) -> None:
        super().__init__(graph)
        if spanner.n != graph.n:
            raise ValueError("spanner and graph must share the vertex set")
        self._spanner = spanner
        self._inner = inner

    @property
    def spanner(self) -> PortLabeledGraph:
        """The spanner subgraph routing actually takes place in."""
        return self._spanner

    @property
    def inner(self) -> LandmarkRoutingFunction:
        """The landmark routing function on the spanner."""
        return self._inner

    def address(self, dest: int) -> LandmarkAddress:
        """Routing address of ``dest`` (expressed with spanner ports)."""
        return self._inner.address(dest)

    def port(self, node: int, header: LandmarkAddress) -> int:
        inner_port = self._inner.port(node, header)
        if inner_port == DELIVER:
            return DELIVER
        neighbor = self._spanner.neighbor_at_port(node, inner_port)
        return self._graph.port(node, neighbor)

    def table_entries(self, node: int) -> Dict[int, int]:
        """Stored ``target -> port`` entries at ``node``, with network ports."""
        out: Dict[int, int] = {}
        for target, inner_port in self._inner.table_entries(node).items():
            neighbor = self._spanner.neighbor_at_port(node, inner_port)
            out[target] = self._graph.port(node, neighbor)
        return out

    def local_table_size(self, node: int) -> int:
        """Number of stored (target, port) entries at ``node``."""
        return self._inner.local_table_size(node)


class RewritingHierarchicalSpannerRoutingFunction(HierarchicalSpannerRoutingFunction):
    """Spanner+landmark composition over a header-rewriting inner function.

    Port decisions go through the inherited spanner-to-network translation;
    header rewriting is delegated to the inner
    :class:`~repro.routing.landmark.RewritingLandmarkRoutingFunction`, whose
    hierarchical level tag (full address vs bare label) drives the two
    routing phases.  Overriding ``next_header`` is what drops the class off
    the next-hop lowering: ``program_kind()`` resolves to
    ``"header-state"`` through the inherited ``can_vectorize`` promise.
    """

    def next_header(self, node: int, header: Hashable) -> Hashable:
        return self._inner.next_header(node, header)


class HierarchicalSpannerScheme(BaseRoutingScheme):
    """Universal scheme with stretch at most ``3 * spanner_stretch``.

    Parameters
    ----------
    spanner_stretch:
        Multiplicative stretch of the greedy spanner stage (``t >= 1``);
        ``t = 1`` keeps every edge and degenerates to plain Cowen routing.
    num_landmarks, selection, seed:
        Forwarded to :class:`~repro.routing.landmark.CowenLandmarkScheme`.
    rewriting:
        When true, the inner landmark stage rewrites headers (two-phase
        formulation) and the composition wraps it in
        :class:`RewritingHierarchicalSpannerRoutingFunction`; routes are
        identical to the header-constant composition.
    """

    name = "spanner-landmark"

    def __init__(
        self,
        spanner_stretch: float = 3.0,
        num_landmarks: Optional[int] = None,
        selection: str = "random",
        seed: Optional[int] = None,
        rewriting: bool = False,
    ) -> None:
        if spanner_stretch < 1:
            raise ValueError("spanner_stretch must be at least 1")
        self.spanner_stretch = spanner_stretch
        self.rewriting = rewriting
        self._landmark_scheme = CowenLandmarkScheme(
            num_landmarks=num_landmarks, selection=selection, seed=seed, rewriting=rewriting
        )

    @property
    def stretch_guarantee(self) -> float:
        """Worst-case stretch of the composition."""
        return 3.0 * self.spanner_stretch

    def build(self, graph: PortLabeledGraph) -> HierarchicalSpannerRoutingFunction:
        """Build the composed routing function for a connected graph."""
        spanner = greedy_spanner(graph, self.spanner_stretch)
        inner = self._landmark_scheme.build(spanner)
        wrapper_class = (
            RewritingHierarchicalSpannerRoutingFunction
            if self.rewriting
            else HierarchicalSpannerRoutingFunction
        )
        return wrapper_class(graph, spanner, inner)
