"""Cowen-style landmark (pivot) routing — a universal stretch-3 scheme.

This is the classical space/stretch trade-off construction underlying the
``s >= 3`` rows of Table 1: pick a set ``L`` of *landmarks*; every vertex
``u`` stores

* the output port of a shortest path towards every landmark, and
* the output port towards every vertex of its *cluster*
  ``C(u) = { v : d(u, v) < d(v, L) }`` (vertices strictly closer to ``u``
  than to their own nearest landmark).

The address of a destination ``v`` is ``(v, l(v), e(v))`` where ``l(v)`` is
``v``'s nearest landmark and ``e(v)`` the output port used at ``l(v)`` on a
shortest path towards ``v``.  Routing a message from ``u`` to ``v``:

1. if ``v ∈ C(u)`` or ``v`` is a landmark known to ``u`` → forward on the
   stored shortest-path port (and the same holds inductively at every node
   closer to ``v``);
2. otherwise forward towards ``l(v)`` on the stored landmark port; when the
   message reaches ``l(v)`` it exits through ``e(v)``, and the node reached
   is strictly closer to ``v`` than ``d(v, l(v))``, hence ``v`` lies in its
   cluster and case 1 applies forever after.

The resulting routing path length is at most ``d(u, v) + 2 d(v, l(v)) <=
3 d(u, v)`` whenever case 2 is taken, hence stretch ≤ 3.  Memory per vertex
is ``O((|L| + |C(u)|) log n)`` bits; choosing ``|L| ≈ sqrt(n log n)``
balances the two terms at ``Õ(sqrt(n))`` in expectation on arbitrary graphs.

The scheme is *labeled* (addresses carry ``O(log n)`` extra bits); the paper
explicitly accounts for such schemes in its Table 1 comments, and the memory
report separates table bits from address bits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.graphs.digraph import PortLabeledGraph
from repro.graphs.shortest_paths import UNREACHABLE, distance_matrix
from repro.routing.model import BaseRoutingScheme, DELIVER, LabeledRoutingFunction
from repro.routing.tables import build_next_hop_matrix

__all__ = [
    "LandmarkAddress",
    "LandmarkRoutingFunction",
    "RewritingLandmarkRoutingFunction",
    "CowenLandmarkScheme",
]


@dataclass(frozen=True)
class LandmarkAddress:
    """Routing address ``(dest, landmark, port_at_landmark)`` of a destination."""

    dest: int
    landmark: int
    port_at_landmark: int


class LandmarkRoutingFunction(LabeledRoutingFunction):
    """Routing function of the Cowen landmark scheme.

    Parameters
    ----------
    graph:
        Underlying connected graph.
    landmarks:
        The landmark set (non-empty).
    cluster_ports:
        ``cluster_ports[u][v]`` is the port used at ``u`` towards cluster
        member ``v`` (shortest-path port).
    landmark_ports:
        ``landmark_ports[u][l]`` is the port used at ``u`` towards landmark
        ``l`` (shortest-path port); absent for ``u == l``.
    addresses:
        Precomputed :class:`LandmarkAddress` per destination.
    """

    def __init__(
        self,
        graph: PortLabeledGraph,
        landmarks: FrozenSet[int],
        cluster_ports: Dict[int, Dict[int, int]],
        landmark_ports: Dict[int, Dict[int, int]],
        addresses: Dict[int, LandmarkAddress],
    ) -> None:
        super().__init__(graph)
        self._landmarks = landmarks
        self._cluster_ports = cluster_ports
        self._landmark_ports = landmark_ports
        self._addresses = addresses

    # ------------------------------------------------------------------
    @property
    def landmarks(self) -> FrozenSet[int]:
        """The landmark set."""
        return self._landmarks

    def cluster(self, node: int) -> Set[int]:
        """Cluster of ``node`` (the destinations it stores a direct port for)."""
        return set(self._cluster_ports.get(node, {}))

    def address(self, dest: int) -> LandmarkAddress:
        """Routing address of ``dest``."""
        return self._addresses[dest]

    def table_entries(self, node: int) -> Dict[int, int]:
        """All ``target -> port`` entries stored at ``node`` (cluster + landmarks)."""
        entries = dict(self._landmark_ports.get(node, {}))
        entries.update(self._cluster_ports.get(node, {}))
        return entries

    def local_table_size(self, node: int) -> int:
        """Number of (target, port) entries stored at ``node``."""
        return len(self.table_entries(node))

    # ------------------------------------------------------------------
    def port(self, node: int, header: LandmarkAddress) -> int:
        dest = header.dest
        if node == dest:
            return DELIVER
        direct = self._cluster_ports.get(node, {}).get(dest)
        if direct is not None:
            return direct
        if dest in self._landmark_ports.get(node, {}):
            return self._landmark_ports[node][dest]
        if node == header.landmark:
            return header.port_at_landmark
        return self._landmark_ports[node][header.landmark]


class RewritingLandmarkRoutingFunction(LandmarkRoutingFunction):
    """Two-phase landmark routing with an explicitly rewritten header.

    Same tables, same routes, different ``H``: the message starts with the
    full :class:`LandmarkAddress` (phase 1, towards the landmark) and the
    header is *rewritten to the bare destination label* (phase 2) as soon as
    the current node forwards it on a stored shortest-path port — i.e. when
    the destination is in the node's cluster, the destination is itself a
    landmark, or the node is the destination's landmark exiting through
    ``port_at_landmark``.  The Cowen invariant (every node downstream of such
    a hop is strictly closer to the destination than ``d(v, L)``) guarantees
    the bare label suffices forever after, so ``P`` stays total on phase-2
    headers.

    Forwarding decisions coincide hop for hop with
    :class:`LandmarkRoutingFunction` (the test-suite pins this
    differentially), which makes the class the reference *header-rewriting*
    workload of the header-compiled simulator: its reachable header alphabet
    is finite (``n`` addresses plus ``n`` labels) but the header genuinely
    changes mid-route, so overriding ``next_header`` drops the class off
    the next-hop lowering and ``program_kind()`` resolves to
    ``"header-state"`` through the inherited ``can_vectorize`` promise.
    """

    def port(self, node: int, header: Hashable) -> int:
        if isinstance(header, LandmarkAddress):
            return super().port(node, header)
        dest = int(header)  # type: ignore[call-overload]
        if node == dest:
            return DELIVER
        direct = self._cluster_ports.get(node, {}).get(dest)
        if direct is not None:
            return direct
        towards_landmark = self._landmark_ports.get(node, {}).get(dest)
        if towards_landmark is not None:
            return towards_landmark
        raise ValueError(
            f"rewriting-landmark invariant broken: node {node} stores no port "
            f"for rewritten destination {dest}"
        )

    def next_header(self, node: int, header: Hashable) -> Hashable:
        if not isinstance(header, LandmarkAddress):
            return header
        dest = header.dest
        if (
            dest in self._cluster_ports.get(node, {})
            or dest in self._landmark_ports.get(node, {})
            or node == header.landmark
        ):
            return dest
        return header


class CowenLandmarkScheme(BaseRoutingScheme):
    """Universal landmark routing scheme with worst-case stretch 3.

    Parameters
    ----------
    num_landmarks:
        Number of landmarks to select; ``None`` selects
        ``ceil(sqrt(n * max(log2 n, 1)))`` (the balanced choice).
    selection:
        ``"random"`` samples landmarks uniformly; ``"degree"`` picks the
        highest-degree vertices (a common practical heuristic that shrinks
        clusters on skewed-degree graphs).
    seed:
        Seed of the random selection.
    rewriting:
        When true, build :class:`RewritingLandmarkRoutingFunction` (the
        two-phase header-rewriting formulation) instead of the
        header-constant :class:`LandmarkRoutingFunction`; routes are
        identical.
    """

    name = "cowen-landmark"
    stretch_guarantee = 3.0

    def __init__(
        self,
        num_landmarks: Optional[int] = None,
        selection: str = "random",
        seed: Optional[int] = None,
        rewriting: bool = False,
    ) -> None:
        if selection not in ("random", "degree"):
            raise ValueError("selection must be 'random' or 'degree'")
        self.num_landmarks = num_landmarks
        self.selection = selection
        self.seed = seed
        self.rewriting = rewriting

    # ------------------------------------------------------------------
    def _pick_landmarks(self, graph: PortLabeledGraph) -> FrozenSet[int]:
        n = graph.n
        k = self.num_landmarks
        if k is None:
            k = int(np.ceil(np.sqrt(n * max(np.log2(max(n, 2)), 1.0))))
        k = max(1, min(k, n))
        if self.selection == "degree":
            order = sorted(range(n), key=lambda v: (-graph.degree(v), v))
            return frozenset(order[:k])
        rng = np.random.default_rng(self.seed)
        return frozenset(int(v) for v in rng.choice(n, size=k, replace=False))

    def build(self, graph: PortLabeledGraph) -> LandmarkRoutingFunction:
        """Build the landmark routing function for a connected graph."""
        n = graph.n
        if n == 0:
            raise ValueError("cannot route on the empty graph")
        dist = distance_matrix(graph)
        if n > 1 and (dist == UNREACHABLE).any():
            raise ValueError("landmark routing requires a connected graph")
        landmarks = self._pick_landmarks(graph)
        next_hop = build_next_hop_matrix(graph, tie_break="lowest_port", dist=dist)

        landmark_list = sorted(landmarks)
        # Nearest landmark of every vertex (ties broken towards the smallest label).
        dist_to_landmarks = dist[:, landmark_list]  # shape (n, |L|)
        nearest_idx = np.argmin(dist_to_landmarks, axis=1)
        nearest_landmark = {v: landmark_list[int(nearest_idx[v])] for v in range(n)}
        dist_to_nearest = {v: int(dist_to_landmarks[v, int(nearest_idx[v])]) for v in range(n)}

        def port_towards(u: int, target: int) -> int:
            return graph.port(u, int(next_hop[u, target]))

        # Clusters: C(u) = { v != u : d(u, v) < d(v, L) }.
        cluster_ports: Dict[int, Dict[int, int]] = {u: {} for u in range(n)}
        for u in range(n):
            for v in range(n):
                if v == u:
                    continue
                if dist[u, v] < dist_to_nearest[v]:
                    cluster_ports[u][v] = port_towards(u, v)

        # Every vertex stores a port towards every landmark.
        landmark_ports: Dict[int, Dict[int, int]] = {u: {} for u in range(n)}
        for u in range(n):
            for l in landmark_list:
                if l != u:
                    landmark_ports[u][l] = port_towards(u, l)

        # Addresses.
        addresses: Dict[int, LandmarkAddress] = {}
        for v in range(n):
            l = nearest_landmark[v]
            port_at_l = DELIVER if l == v else port_towards(l, v)
            addresses[v] = LandmarkAddress(dest=v, landmark=l, port_at_landmark=port_at_l)

        function_class = (
            RewritingLandmarkRoutingFunction if self.rewriting else LandmarkRoutingFunction
        )
        return function_class(
            graph, landmarks, cluster_ports, landmark_ports, addresses
        )
