"""Shortest-path routing tables — the universal ``O(n log n)``-bit scheme.

The baseline universal routing scheme of the paper: every router stores, for
every destination, the output port of one shortest path towards it.  Encoded
naively this costs ``(n - 1) * ceil(log2 deg(x))`` bits at a router ``x``
(about ``n log n`` bits in the worst case), and Theorem 1 shows that for any
stretch factor below 2 this cannot be asymptotically improved on some
networks.

The scheme is parameterised by the tie-breaking rule used when several
shortest paths exist, because different rules produce tables of different
compressibility (e.g. the interval coder of :mod:`repro.memory.coder`
benefits from the ``lowest_port`` rule on ring-like graphs).
"""

from __future__ import annotations

from typing import Dict, Literal, Optional

import numpy as np

from repro.graphs.digraph import PortLabeledGraph
from repro.graphs.shortest_paths import UNREACHABLE, bfs_distances, distance_matrix
from repro.routing.model import BaseRoutingScheme, TableRoutingFunction

__all__ = ["ShortestPathTableScheme", "build_next_hop_matrix"]

TieBreak = Literal["lowest_neighbor", "lowest_port", "highest_port"]


def build_next_hop_matrix(
    graph: PortLabeledGraph,
    tie_break: TieBreak = "lowest_port",
    dist: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Next-hop matrix ``next_hop[x, dest]`` of one shortest-path routing.

    ``next_hop[x, x] = x``; entries for unreachable destinations are ``-1``.

    The computation runs one BFS per destination and picks, among the
    neighbours of ``x`` lying on a shortest path to ``dest``, the one
    selected by ``tie_break``.
    """
    n = graph.n
    next_hop = np.full((n, n), -1, dtype=np.int64)
    np.fill_diagonal(next_hop, np.arange(n))
    if dist is None:
        dist = distance_matrix(graph)
    for dest in range(n):
        dist_to_dest = dist[:, dest]
        for x in range(n):
            if x == dest or dist_to_dest[x] == UNREACHABLE:
                continue
            best_neighbor = -1
            best_key = None
            for v in graph.neighbors(x):
                if dist_to_dest[v] != dist_to_dest[x] - 1:
                    continue
                if tie_break == "lowest_neighbor":
                    key = v
                elif tie_break == "lowest_port":
                    key = graph.port(x, v)
                elif tie_break == "highest_port":
                    key = -graph.port(x, v)
                else:  # pragma: no cover - guarded by the Literal type
                    raise ValueError(f"unknown tie break rule {tie_break!r}")
                if best_key is None or key < best_key:
                    best_key = key
                    best_neighbor = v
            next_hop[x, dest] = best_neighbor
    return next_hop


class ShortestPathTableScheme(BaseRoutingScheme):
    """Universal shortest-path routing scheme based on full routing tables.

    Parameters
    ----------
    tie_break:
        Rule used to pick a next hop when several shortest paths exist.

    Notes
    -----
    ``stretch_guarantee`` is 1: the produced routing functions always route
    along shortest paths.
    """

    name = "routing-tables"
    stretch_guarantee = 1.0

    def __init__(self, tie_break: TieBreak = "lowest_port") -> None:
        self.tie_break: TieBreak = tie_break

    def build(self, graph: PortLabeledGraph) -> TableRoutingFunction:
        """Build the shortest-path table routing function for ``graph``.

        Raises :class:`ValueError` on disconnected graphs (routing functions
        are only defined on connected networks in the paper's model).
        """
        dist = distance_matrix(graph)
        if graph.n > 1 and (dist == UNREACHABLE).any():
            raise ValueError("routing tables require a connected graph")
        next_hop = build_next_hop_matrix(graph, tie_break=self.tie_break, dist=dist)
        tables: Dict[int, Dict[int, int]] = {}
        for x in range(graph.n):
            table: Dict[int, int] = {}
            for dest in range(graph.n):
                if dest == x:
                    continue
                table[dest] = graph.port(x, int(next_hop[x, dest]))
            tables[x] = table
        return TableRoutingFunction(graph, tables, validate=False)
