"""The ``R = (I, H, P)`` routing-function model of the paper.

Definitions (Section 1 of the paper):

* ``I(u, v)`` — *initialization*: the header attached by the source ``u`` to
  a message destined to ``v``.
* ``P(x, h)`` — *port*: the local output port through which a node ``x``
  forwards a message with header ``h``; the reserved value :data:`DELIVER`
  (we use ``0``, ports being ``1..deg(x)``) means the message has arrived.
* ``H(x, h)`` — *header rewriting*: the header attached to the message when
  it leaves ``x``.

For any distinct ``u, v`` the induced sequence of nodes must be a path from
``u`` to ``v`` in the graph.  The *memory requirement* ``MEM_G(R, x)`` is the
size of the smallest program computing ``I(x, ·)``, ``H(x, ·)`` and
``P(x, ·)`` — the Kolmogorov complexity of the local routing behaviour.  The
:mod:`repro.memory` package provides concrete (upper-bound) encodings for the
routing functions defined here.

Most classical schemes are *destination based*: the header is simply the
destination label and is never rewritten.  Those are modelled by
:class:`DestinationBasedRoutingFunction`, whose local behaviour at ``x`` is
entirely described by the map ``dest -> port``.  Labeled (name-dependent)
schemes such as landmark routing attach richer addresses; they derive from
:class:`LabeledRoutingFunction`.
"""

from __future__ import annotations

import abc
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    ClassVar,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Protocol,
    runtime_checkable,
)

from repro.graphs.digraph import PortLabeledGraph

if TYPE_CHECKING:  # circular at runtime: program.py imports this module
    from repro.routing.program import RoutingProgram

__all__ = [
    "DELIVER",
    "RoutingFunction",
    "DestinationBasedRoutingFunction",
    "TableRoutingFunction",
    "LabeledRoutingFunction",
    "BaseRoutingScheme",
    "RoutingScheme",
    "SchemeInapplicableError",
]

#: Reserved port value meaning "deliver the message here".
DELIVER = 0


class SchemeInapplicableError(ValueError):
    """A partial scheme declined a graph outside its class (``build`` raised).

    Grid drivers (:mod:`repro.analysis.table1`, :mod:`repro.sim.conformance`,
    :mod:`repro.analysis.runner`) wrap the :class:`ValueError` a partial
    scheme raises from ``build`` in this subclass so they can *skip* the
    cell, while the simulator's own :class:`ValueError` diagnostics (lost
    pairs, invalid ports) keep propagating as the bugs they are.
    """


class RoutingFunction(abc.ABC):
    """Abstract routing function ``R = (I, H, P)`` on a fixed graph."""

    #: Capability flag of the header-compiled simulator path
    #: (:func:`repro.sim.engine.compile_header_program`).  ``True`` promises
    #: that headers are hashable and that the set of ``(node, header)``
    #: states reachable from the initial headers is finite and small
    #: (roughly ``O(n^2)``), so the simulator may enumerate the header
    #: alphabet once and compile ``(node, header) -> (port, next header)``
    #: into integer state-transition arrays.  The abstract base is
    #: conservative (``False``): an arbitrary ``H`` may grow headers without
    #: bound (hop counters, appended traces), which would make the
    #: enumeration diverge.  The library subclasses below opt in — their
    #: headers are destination labels, addresses or interval labels, all
    #: drawn from finite alphabets — and rewriting subclasses whose header
    #: evolution stays within a finite alphabet (remaining e-cube masks,
    #: two-phase landmark tags) inherit the opt-in.
    can_vectorize: ClassVar[bool] = False

    def __init__(self, graph: PortLabeledGraph) -> None:
        self._graph = graph

    @property
    def graph(self) -> PortLabeledGraph:
        """The graph this routing function is defined on."""
        return self._graph

    # ------------------------------------------------------------------
    # lowering to the compiled-program IR (repro.routing.program)
    # ------------------------------------------------------------------
    def program_kind(self) -> str:
        """Which :mod:`repro.routing.program` kind this function lowers to.

        The lowering decision is owned by the routing classes, not sniffed
        by the simulator: each class checks only its *own* contract.  The
        abstract base never claims the next-hop form (an arbitrary ``H``
        may rewrite headers); it offers the header-state machine when the
        class declares ``can_vectorize`` (a finite, enumerable
        ``(node, header)`` alphabet) and the generic opt-out otherwise.
        Subclasses refine this: the destination-based/labeled/interval
        bases return ``"next-hop"`` exactly when their header-constant
        contract is intact (neither ``next_header`` nor their own
        ``initial_header`` is overridden), and the header-rewriting
        formulations inherit the header-state answer from here.
        """
        if self.can_vectorize:
            return "header-state"
        return "generic"

    def compile_program(self, max_states: Optional[int] = None) -> "RoutingProgram":
        """Lower this routing function to its :class:`~repro.routing.program.RoutingProgram`.

        Dispatches on :meth:`program_kind`; ``max_states`` caps the
        header-state enumeration (see
        :func:`repro.routing.program.lower_header_state`).
        """
        from repro.routing.program import lower

        return lower(self, max_states=max_states)

    @abc.abstractmethod
    def initial_header(self, source: int, dest: int) -> Hashable:
        """``I(source, dest)`` — header attached by the source."""

    @abc.abstractmethod
    def port(self, node: int, header: Hashable) -> int:
        """``P(node, header)`` — output port used at ``node``, or :data:`DELIVER`."""

    def next_header(self, node: int, header: Hashable) -> Hashable:
        """``H(node, header)`` — header after traversing ``node``.

        The default implementation leaves the header unchanged, which is what
        every destination-based scheme does.
        """
        return header

    # ------------------------------------------------------------------
    def local_decision(self, node: int, source: int, dest: int) -> int:
        """First output port used at ``node`` were it the source of a message to ``dest``.

        Convenience used by the matrix-of-constraints machinery, which only
        ever inspects ``P(a, I(a, b))``.
        """
        if node != source:
            raise ValueError("local_decision is defined at the source only")
        return self.port(node, self.initial_header(source, dest))


class DestinationBasedRoutingFunction(RoutingFunction):
    """Routing function whose header is the destination label, never rewritten.

    Sub-classes implement :meth:`port_to` (``node, dest -> port``).  The local
    routing function of a node ``x`` is exactly the finite map
    ``{dest: port_to(x, dest)}``, exposed by :meth:`local_map` for the memory
    encoders.
    """

    #: Headers are destination labels (or finite derivatives thereof in
    #: rewriting subclasses): the header-compiled simulator path applies.
    can_vectorize: ClassVar[bool] = True

    def program_kind(self) -> str:
        """Next-hop form iff the header-constant contract is intact.

        A subclass that overrides ``next_header`` or ``initial_header``
        (say, to embed source-dependent hints) has broken the
        "header == destination, never rewritten" contract this base class
        establishes; it falls through to the base resolution (header-state
        via ``can_vectorize``, or generic) rather than being silently
        compiled against a fabricated source.
        """
        cls = type(self)
        if (
            cls.next_header is RoutingFunction.next_header
            and cls.initial_header is DestinationBasedRoutingFunction.initial_header
        ):
            return "next-hop"
        return super().program_kind()

    def initial_header(self, source: int, dest: int) -> int:
        return dest

    def port(self, node: int, header: Hashable) -> int:
        dest = int(header)  # type: ignore[arg-type]
        if dest == node:
            return DELIVER
        return self.port_to(node, dest)

    @abc.abstractmethod
    def port_to(self, node: int, dest: int) -> int:
        """Output port used at ``node`` for a message destined to ``dest != node``."""

    def local_map(self, node: int) -> Dict[int, int]:
        """The map ``dest -> port`` describing the local routing function of ``node``."""
        return {
            dest: self.port_to(node, dest)
            for dest in self._graph.vertices()
            if dest != node
        }


class TableRoutingFunction(DestinationBasedRoutingFunction):
    """Destination-based routing function backed by explicit per-node tables.

    Parameters
    ----------
    graph:
        The underlying graph.
    tables:
        ``tables[x][dest]`` is the output port used at ``x`` for destination
        ``dest``; every node must have an entry for every other vertex.
    validate:
        When true (default), table completeness and port validity are checked
        eagerly.
    """

    def __init__(
        self,
        graph: PortLabeledGraph,
        tables: Mapping[int, Mapping[int, int]],
        validate: bool = True,
    ) -> None:
        super().__init__(graph)
        self._tables: Dict[int, Dict[int, int]] = {
            int(x): {int(d): int(p) for d, p in t.items()} for x, t in tables.items()
        }
        if validate:
            self._validate()

    def _validate(self) -> None:
        n = self._graph.n
        for x in range(n):
            table = self._tables.get(x)
            if table is None:
                raise ValueError(f"missing routing table for vertex {x}")
            for dest in range(n):
                if dest == x:
                    continue
                if dest not in table:
                    raise ValueError(f"vertex {x} has no table entry for destination {dest}")
                port = table[dest]
                if not 1 <= port <= self._graph.degree(x):
                    raise ValueError(
                        f"vertex {x} routes to destination {dest} through invalid port {port}"
                    )

    def port_to(self, node: int, dest: int) -> int:
        return self._tables[node][dest]

    def local_map(self, node: int) -> Dict[int, int]:
        return dict(self._tables[node])

    def table(self, node: int) -> Dict[int, int]:
        """Alias of :meth:`local_map` matching the routing-table vocabulary."""
        return self.local_map(node)


class LabeledRoutingFunction(RoutingFunction):
    """Base class for labeled (name-dependent) schemes.

    The scheme assigns each destination an *address* (:meth:`address`)
    containing routing hints; the initial header of a message is the address
    of the destination.  The paper's model fixes node labels to ``1..n`` but
    its Table 1 explicitly covers referenced schemes with ``O(log^2 n)``-bit
    vertex labels; we keep the address size as a separately reported
    quantity (see :func:`repro.memory.requirement.address_bits`).
    """

    #: Headers are per-destination addresses (finitely many), so the
    #: header-compiled simulator path applies.
    can_vectorize: ClassVar[bool] = True

    def program_kind(self) -> str:
        """Next-hop form iff the fixed-address contract is intact.

        Labeled headers are per-destination addresses: header-constant
        unless a subclass rewrites them (``next_header``) or derives the
        initial header from more than the destination
        (``initial_header``); those subclasses fall through to the base
        resolution.
        """
        cls = type(self)
        if (
            cls.next_header is RoutingFunction.next_header
            and cls.initial_header is LabeledRoutingFunction.initial_header
        ):
            return "next-hop"
        return super().program_kind()

    @abc.abstractmethod
    def address(self, dest: int) -> Hashable:
        """Address (routing label) of ``dest``."""

    def initial_header(self, source: int, dest: int) -> Hashable:
        return self.address(dest)


class BaseRoutingScheme:
    """Concrete base of the library's routing schemes: owns the lowering.

    Gives every scheme the ``compile_program(graph)`` entry point of the
    compile-once pipeline: build the routing function on a copy of the
    graph (some schemes relabel ports in place) and lower it to its
    :class:`~repro.routing.program.RoutingProgram`.  Subclasses implement
    ``build`` and expose ``name`` / ``stretch_guarantee`` as before.
    """

    name: str = "routing-scheme"

    def build(self, graph: PortLabeledGraph) -> RoutingFunction:
        """Return a routing function for ``graph`` (subclass responsibility)."""
        raise NotImplementedError

    def compile_program(self, graph: PortLabeledGraph, max_states: Optional[int] = None) -> "RoutingProgram":
        """Lower this scheme on ``graph`` to a serializable routing program.

        A ``build`` refusal on an inapplicable graph is re-raised as
        :class:`SchemeInapplicableError` (see
        :func:`repro.routing.program.compile_scheme_program`).
        """
        from repro.routing.program import compile_scheme_program

        return compile_scheme_program(self, graph, max_states=max_states)


@runtime_checkable
class RoutingScheme(Protocol):
    """A universal routing scheme: a callable producing a routing function for any graph.

    Concrete schemes additionally expose a ``name`` attribute and may expose
    a ``stretch_guarantee`` attribute giving the worst-case stretch they are
    designed for (``None`` meaning shortest paths).  Library schemes derive
    from :class:`BaseRoutingScheme` and also offer ``compile_program(graph)``
    — build-then-lower to a :class:`~repro.routing.program.RoutingProgram`.
    """

    name: str

    def build(self, graph: PortLabeledGraph) -> RoutingFunction:
        """Return a routing function for ``graph``."""
        ...
