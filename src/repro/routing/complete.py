"""Routing on the complete graph: good versus adversarial port labellings.

The paper's Section 1 example: on ``K_n`` a local routing function must know
which port leads to which neighbour.  If an adversary labels the ports of a
vertex ``x`` with an arbitrary permutation, reaching a prescribed neighbour
requires knowing the full permutation — ``log((n-1)!) ≈ (n-1) log(n-1)``
bits.  If instead the ports are labelled by the rule
``port(x, v) = ((v - x) mod n)``, the local routing function is the closed
form "use port ``(dest - me) mod n``" and ``O(log n)`` bits (the node's own
label) suffice: ``MEM_local(K_n, 1) = O(log n)``.

Both labellings are provided so the memory benchmarks of experiment E7 can
measure the two regimes on the very same graph family.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.graphs.digraph import PortLabeledGraph
from repro.graphs.properties import is_complete
from repro.routing.model import (
    BaseRoutingScheme,
    DestinationBasedRoutingFunction,
    TableRoutingFunction,
)

__all__ = ["ModularCompleteGraphScheme", "AdversarialCompleteGraphScheme", "ModularCompleteRoutingFunction"]


class ModularCompleteRoutingFunction(DestinationBasedRoutingFunction):
    """Closed-form routing on ``K_n`` with the modular port labelling."""

    def port_to(self, node: int, dest: int) -> int:
        n = self._graph.n
        return (dest - node) % n

    def parametric_description_bits(self) -> int:
        """Bits to describe the local rule: the node's own label plus O(1)."""
        return max(int(np.ceil(np.log2(max(self._graph.n, 2)))), 1)


class ModularCompleteGraphScheme(BaseRoutingScheme):
    """Complete-graph scheme installing the good (modular) port labelling.

    ``build`` *relabels the ports* of the input graph in place so that
    ``port(x, v) = (v - x) mod n`` and returns the closed-form routing
    function.  The relabelling is exactly the "suitable port labelling" the
    paper invokes to obtain ``MEM_local(K_n, 1) = O(log n)``.
    """

    name = "complete-modular"
    stretch_guarantee = 1.0

    def build(self, graph: PortLabeledGraph) -> ModularCompleteRoutingFunction:
        if not is_complete(graph):
            raise ValueError("this scheme only applies to complete graphs")
        n = graph.n
        for x in range(n):
            mapping = {v: (v - x) % n for v in graph.neighbors(x)}
            graph.set_port_labeling(x, mapping)
        return ModularCompleteRoutingFunction(graph)


class AdversarialCompleteGraphScheme(BaseRoutingScheme):
    """Complete-graph scheme under an adversarial (random) port labelling.

    ``build`` relabels the ports of every vertex with an independent random
    permutation and returns the routing-table function that routes each
    destination through its direct port.  The local map of a vertex is then
    an arbitrary permutation of ``1..n-1``: no encoding shorter than
    ``log((n-1)!)`` bits can describe it in general, which is the paper's
    ``Θ(n log n)`` adversarial bound.
    """

    name = "complete-adversarial"
    stretch_guarantee = 1.0

    def __init__(self, seed: Optional[int] = None) -> None:
        self.seed = seed

    def build(self, graph: PortLabeledGraph) -> TableRoutingFunction:
        if not is_complete(graph):
            raise ValueError("this scheme only applies to complete graphs")
        rng = np.random.default_rng(self.seed)
        n = graph.n
        for x in range(n):
            neighbors = graph.neighbors(x)
            perm = rng.permutation(len(neighbors)) + 1
            mapping = {v: int(p) for v, p in zip(neighbors, perm)}
            graph.set_port_labeling(x, mapping)
        tables: Dict[int, Dict[int, int]] = {
            x: {v: graph.port(x, v) for v in range(n) if v != x} for x in range(n)
        }
        return TableRoutingFunction(graph, tables, validate=False)
