"""Multiplicative graph spanners.

A subgraph ``H`` of ``G`` is a *t-spanner* when ``d_H(u, v) <= t * d_G(u, v)``
for every pair of vertices.  Spanners (Peleg & Schäffer, cited in the paper)
are the substrate of all large-stretch compact routing schemes: routing
inside a sparse spanner multiplies the stretch by ``t`` but shrinks the
degree (and hence the per-arc routing information) of the routers.

The greedy spanner construction of Althöfer et al. is implemented: visit the
edges (in an arbitrary but deterministic order for unweighted graphs) and add
an edge only if the current spanner distance between its endpoints exceeds
``t``.  For ``t = 2k - 1`` the output has at most ``n^{1 + 1/k}`` edges and
girth greater than ``t + 1``.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Tuple

import numpy as np

from repro.graphs.digraph import PortLabeledGraph
from repro.graphs.shortest_paths import UNREACHABLE, distance_matrix

__all__ = ["greedy_spanner", "spanner_stretch"]


def _bounded_distance(
    adjacency: List[List[int]], source: int, target: int, bound: int
) -> Optional[int]:
    """BFS distance from ``source`` to ``target`` truncated at ``bound`` hops.

    Returns ``None`` when the distance exceeds ``bound`` (or the target is
    unreachable within the bound).
    """
    if source == target:
        return 0
    dist = {source: 0}
    queue: deque[int] = deque([source])
    while queue:
        u = queue.popleft()
        du = dist[u]
        if du >= bound:
            continue
        for v in adjacency[u]:
            if v not in dist:
                if v == target:
                    return du + 1
                dist[v] = du + 1
                queue.append(v)
    return None


def greedy_spanner(graph: PortLabeledGraph, stretch: float) -> PortLabeledGraph:
    """Greedy multiplicative ``stretch``-spanner of an unweighted graph.

    Parameters
    ----------
    graph:
        Input graph (connectivity is preserved: a spanner of a connected
        graph is connected because every edge is either kept or already
        spanned within the stretch bound).
    stretch:
        Required multiplicative stretch ``t >= 1``.

    Returns
    -------
    PortLabeledGraph
        A new graph on the same vertex set with the canonical port labelling.
    """
    if stretch < 1:
        raise ValueError("stretch must be at least 1")
    n = graph.n
    adjacency: List[List[int]] = [[] for _ in range(n)]
    kept: List[Tuple[int, int]] = []
    bound = int(np.floor(stretch))
    for u, v in sorted(graph.edges()):
        d = _bounded_distance(adjacency, u, v, bound)
        if d is None:
            kept.append((u, v))
            adjacency[u].append(v)
            adjacency[v].append(u)
    spanner = PortLabeledGraph(n, kept)
    spanner.sort_ports_by_neighbor()
    return spanner


def spanner_stretch(graph: PortLabeledGraph, spanner: PortLabeledGraph) -> float:
    """Exact multiplicative stretch of ``spanner`` with respect to ``graph``.

    Both graphs must share the vertex set ``0..n-1``.  Returns ``inf`` when
    the spanner disconnects a pair that is connected in the original graph.
    """
    if graph.n != spanner.n:
        raise ValueError("graph and spanner must have the same vertex set")
    if graph.n < 2:
        return 1.0
    dg = distance_matrix(graph)
    dh = distance_matrix(spanner)
    worst = 1.0
    for u in range(graph.n):
        for v in range(u + 1, graph.n):
            if dg[u, v] == UNREACHABLE:
                continue
            if dh[u, v] == UNREACHABLE:
                return float("inf")
            if dg[u, v] > 0:
                worst = max(worst, dh[u, v] / dg[u, v])
    return float(worst)
