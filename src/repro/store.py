"""Content-addressed store for compiled routing programs.

Every workload since the compile-once refactor runs off sha256-fingerprinted
:class:`~repro.routing.program.RoutingProgram` artifacts, but until now those
artifacts lived in hand-versioned per-directory caches: keyed files with no
manifest, no eviction, and no cross-run identity.  This module is the
promotion of that cache into a real registry:

* **Objects are content-addressed.**  A program's bytes live exactly once at
  ``objects/<fp[:2]>/<fp>.rpg`` where ``fp`` is the program's own
  :meth:`~repro.routing.program.RoutingProgram.fingerprint` — the sha256 of
  its canonical ``to_bytes`` form.  Two cache keys whose compiles produce the
  same program (a churn delta patched back to a previously-seen snapshot, two
  scheme configs lowering identically) share one object; writing an object
  that already exists is a no-op.  Writes are atomic
  (:func:`~repro.routing.program.save_program`: temp file + ``os.replace``),
  so concurrent writers — even two processes storing the same fingerprint —
  can never produce a torn object.

* **Keys live in a JSONL manifest.**  ``manifest.jsonl`` is an append-only
  log of one JSON object per line mapping a lookup key (the runner's
  ``(CACHE_SCHEMA, "program", graph fp, scheme fp)`` hash) to its object id
  plus graph/scheme metadata — or to an ``"inapplicable"`` verdict for a
  scheme whose build refused the graph, so warm sweeps never re-attempt a
  refused build.  Appends are single ``O_APPEND`` writes (atomic for
  manifest-sized lines on POSIX) and readers tail the file incrementally, so
  shard workers pick up each other's entries mid-sweep without rescanning.
  The latest record for a key wins.  A corrupt or truncated line degrades to
  a skipped record with a :class:`RuntimeWarning` naming the file and line —
  never an exception, never a silent global miss.

* **Integrity is verifiable.**  ``get(key, verify=True)`` re-hashes the
  mapped object against its content address and runs the full static
  verifier (:func:`repro.routing.verify.verify_program`, strict) over the
  decoded program; an object corrupted on disk degrades to a miss, is
  deleted (the next ``put`` rewrites correct bytes at the same address), and
  is counted in :attr:`ProgramStore.degraded`.

* **Eviction is explicit, size-bounded, and LRU.**  :meth:`ProgramStore.gc`
  first removes orphaned objects (on disk but referenced by no manifest
  record), then — when ``max_bytes`` is given — evicts least-recently-used
  objects (every hit touches the object's mtime) together with *all* manifest
  records naming them until the surviving objects fit the bound, and finally
  rewrites the manifest atomically to exactly the surviving records.  The
  invariant: after ``gc``, every manifest-referenced object exists on disk,
  and everything on disk is manifest-referenced.

The store root defaults to ``~/.cache/repro``, overridable with the
``REPRO_STORE`` environment variable (the ``repro`` CLI adds a ``--store``
flag on top); :class:`~repro.analysis.runner.ExperimentCache` roots a store
at its cache directory, which is how ``ShardedRunner`` sweeps, churn deltas,
and mmap program loading all read and write through this module.  See
``docs/architecture.md`` for the dataflow and ``docs/cli.md`` for the
``repro store {ls,gc,info}`` surface.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
from dataclasses import asdict, dataclass, fields
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.routing.program import (
    GenericProgram,
    RoutingProgram,
    load_program,
    save_program,
)
from repro.routing.verify import ProgramVerificationError, verify_program

__all__ = [
    "GcStats",
    "ProgramStore",
    "StoreRecord",
    "default_store_root",
]

#: Environment variable overriding the default store root.
STORE_ENV = "REPRO_STORE"

#: Verdict tag for cached build refusals of partial schemes.
VERDICT_INAPPLICABLE = "inapplicable"


def default_store_root() -> Path:
    """The store root: ``$REPRO_STORE`` if set, else ``~/.cache/repro``."""
    env = os.environ.get(STORE_ENV)
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


@dataclass(frozen=True)
class StoreRecord:
    """One manifest entry: a lookup key bound to an object or a verdict.

    ``object_id`` is the referenced program's content fingerprint (``None``
    for verdict records); ``graph`` / ``scheme`` carry the cell fingerprints
    when the writer knew them, so ``repro store ls`` can say *what* an
    object is without decoding it.
    """

    key: str
    object_id: Optional[str] = None
    kind: Optional[str] = None
    n: Optional[int] = None
    nbytes: int = 0
    graph: Optional[str] = None
    scheme: Optional[str] = None
    verdict: Optional[str] = None
    reason: Optional[str] = None


@dataclass
class GcStats:
    """Outcome of one :meth:`ProgramStore.gc` pass."""

    live_objects: int = 0
    live_bytes: int = 0
    evicted_objects: int = 0
    evicted_bytes: int = 0
    orphans_removed: int = 0
    records_kept: int = 0
    records_dropped: int = 0


class ProgramStore:
    """Content-addressed registry of compiled routing programs.

    Parameters
    ----------
    root:
        Store directory (created on demand).  Objects live under
        ``root/objects``, the key manifest at ``root/manifest.jsonl``.
    """

    def __init__(self, root: Union[str, os.PathLike[str]]) -> None:
        self.root = Path(root)
        #: Corrupt entries (objects or manifest lines) degraded to misses.
        self.degraded = 0
        self._index: Dict[str, StoreRecord] = {}
        self._offset = 0

    # -- layout ----------------------------------------------------------
    @property
    def objects_root(self) -> Path:
        """Directory holding the content-addressed ``.rpg`` objects."""
        return self.root / "objects"

    @property
    def manifest_path(self) -> Path:
        """The append-only JSONL key manifest."""
        return self.root / "manifest.jsonl"

    def object_path(self, object_id: str) -> Path:
        """On-disk path of the object with content fingerprint ``object_id``."""
        return self.objects_root / object_id[:2] / f"{object_id}.rpg"

    # -- manifest --------------------------------------------------------
    def _degrade(self, path: Path, detail: object) -> None:
        self.degraded += 1
        warnings.warn(
            f"degraded store entry at {path}: {detail}; treating as a miss",
            RuntimeWarning,
            stacklevel=3,
        )

    def _refresh(self) -> None:
        """Fold manifest lines appended since the last read into the index.

        Only complete (newline-terminated) lines are consumed: a line still
        being appended by a concurrent writer stays unread until its
        terminator lands, so the tail is re-examined on the next refresh
        instead of being misparsed once.
        """
        try:
            with self.manifest_path.open("rb") as handle:
                handle.seek(self._offset)
                chunk = handle.read()
        except FileNotFoundError:
            return
        except OSError as exc:
            self._degrade(self.manifest_path, exc)
            return
        if not chunk:
            return
        complete, _, partial = chunk.rpartition(b"\n")
        if not complete and partial:
            return
        self._offset += len(complete) + 1
        for line in complete.split(b"\n"):
            if not line.strip():
                continue
            try:
                raw = json.loads(line)
                if not isinstance(raw, dict):
                    raise TypeError("manifest line is not an object")
                known = {f.name for f in fields(StoreRecord)}
                record = StoreRecord(**{k: v for k, v in raw.items() if k in known})
                if not isinstance(record.key, str):
                    raise TypeError("manifest record key must be a string")
            except (TypeError, ValueError) as exc:
                self._degrade(self.manifest_path, f"unreadable line ({exc!r})")
                continue
            self._index[record.key] = record

    def _append(self, record: StoreRecord) -> None:
        payload = {k: v for k, v in asdict(record).items() if v is not None}
        line = (json.dumps(payload, sort_keys=True) + "\n").encode()
        self.root.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.manifest_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, line)
        finally:
            os.close(fd)
        self._index[record.key] = record

    def lookup(self, key: str) -> Optional[StoreRecord]:
        """The latest manifest record for ``key``, or ``None``.

        Misses re-tail the manifest first, so entries appended by other
        processes since the last read are always visible.
        """
        record = self._index.get(key)
        if record is None:
            self._refresh()
            record = self._index.get(key)
        return record

    def records(self) -> List[StoreRecord]:
        """Live records (latest per key), in first-seen key order."""
        self._refresh()
        return list(self._index.values())

    # -- put/get ---------------------------------------------------------
    def put(
        self,
        key: str,
        program: RoutingProgram,
        graph_fp: Optional[str] = None,
        scheme_fp: Optional[str] = None,
    ) -> StoreRecord:
        """Store ``program`` under ``key``; returns the manifest record.

        The object write is skipped when the content address already exists
        (content-addressing makes re-stores and concurrent same-fingerprint
        stores idempotent); the manifest append happens either way so the
        key binding is recorded.
        """
        object_id = program.fingerprint()
        path = self.object_path(object_id)
        if not path.exists():
            save_program(program, path)
        record = StoreRecord(
            key=key,
            object_id=object_id,
            kind=program.kind,
            n=program.n,
            nbytes=path.stat().st_size,
            graph=graph_fp,
            scheme=scheme_fp,
        )
        self._append(record)
        return record

    def put_verdict(
        self,
        key: str,
        reason: str,
        graph_fp: Optional[str] = None,
        scheme_fp: Optional[str] = None,
    ) -> StoreRecord:
        """Record a build-refusal verdict for ``key`` (no object written)."""
        record = StoreRecord(
            key=key,
            graph=graph_fp,
            scheme=scheme_fp,
            verdict=VERDICT_INAPPLICABLE,
            reason=reason,
        )
        self._append(record)
        return record

    def get(
        self, key: str, verify: bool = False
    ) -> Tuple[bool, Union[RoutingProgram, Tuple[str, str], None]]:
        """Look ``key`` up; ``(found, program-or-verdict-tuple)``.

        Programs come back as zero-copy mmap views
        (:func:`~repro.routing.program.load_program`); verdicts as the
        runner's ``("inapplicable", reason)`` tuples.  ``verify=True``
        checks the object's bytes against its content address and
        strict-verifies the decoded program; corruption at either level
        degrades to a miss (warned and counted in :attr:`degraded`) and
        deletes the bad object so the next store rewrites it.  Hits touch
        the object's mtime — the recency signal :meth:`gc` evicts by.
        """
        record = self.lookup(key)
        if record is None:
            return False, None
        if record.verdict is not None:
            return True, (record.verdict, record.reason or "")
        assert record.object_id is not None
        path = self.object_path(record.object_id)
        try:
            program = load_program(
                path, expected_fingerprint=record.object_id if verify else None
            )
        except FileNotFoundError:
            # Evicted by gc (or never synced): an honest miss, not corruption.
            return False, None
        except (OSError, ValueError) as exc:
            self._degrade(path, exc)
            path.unlink(missing_ok=True)
            return False, None
        if verify and not isinstance(program, GenericProgram):
            try:
                verify_program(program, strict=True)
            except ProgramVerificationError as exc:
                self._degrade(path, exc)
                path.unlink(missing_ok=True)
                return False, None
        try:
            os.utime(path)
        except OSError:
            pass
        return True, program

    # -- maintenance -----------------------------------------------------
    def _disk_objects(self) -> Dict[str, Path]:
        objects: Dict[str, Path] = {}
        if self.objects_root.is_dir():
            for path in sorted(self.objects_root.glob("??/*.rpg")):
                objects[path.stem] = path
        return objects

    def _rewrite_manifest(self, kept: List[StoreRecord]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".manifest.tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                for record in kept:
                    payload = {
                        k: v for k, v in asdict(record).items() if v is not None
                    }
                    handle.write((json.dumps(payload, sort_keys=True) + "\n").encode())
            os.replace(tmp_name, self.manifest_path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._index = {record.key: record for record in kept}
        self._offset = self.manifest_path.stat().st_size

    def gc(self, max_bytes: Optional[int] = None) -> GcStats:
        """Collect garbage; optionally evict LRU objects down to ``max_bytes``.

        Three passes: (1) delete **orphans** — objects on disk that no live
        manifest record references; (2) with ``max_bytes``, evict
        least-recently-used referenced objects (and every record naming
        them) until the survivors' total size fits the bound; (3) rewrite
        the manifest atomically to exactly the surviving records, compacting
        superseded appends away.  A manifest-referenced object is never
        deleted without its records going with it, so the post-gc store is
        closed: every record's object exists, every object has a record.

        Not safe to run concurrently with writers (the manifest rewrite
        could drop a record appended mid-pass); quiesce sweeps first.
        """
        stats = GcStats()
        live = {r.key: r for r in self.records()}
        referenced: Dict[str, List[str]] = {}
        for key, record in live.items():
            if record.object_id is not None:
                referenced.setdefault(record.object_id, []).append(key)
        disk = self._disk_objects()
        for object_id, path in disk.items():
            if object_id not in referenced:
                stats.orphans_removed += 1
                path.unlink(missing_ok=True)
        present = {oid: disk[oid] for oid in referenced if oid in disk}
        sizes = {oid: path.stat().st_size for oid, path in present.items()}
        total = sum(sizes.values())
        if max_bytes is not None:
            by_age = sorted(present, key=lambda oid: present[oid].stat().st_mtime)
            for object_id in by_age:
                if total <= max_bytes:
                    break
                present[object_id].unlink(missing_ok=True)
                total -= sizes[object_id]
                stats.evicted_objects += 1
                stats.evicted_bytes += sizes[object_id]
                for key in referenced[object_id]:
                    del live[key]
                del present[object_id]
        stats.live_objects = len(present)
        stats.live_bytes = total
        kept = list(live.values())
        stats.records_kept = len(kept)
        stats.records_dropped = len(self._index) - len(kept)
        self._rewrite_manifest(kept)
        return stats

    def info(self) -> Dict[str, object]:
        """Summary of the store: root, object/record counts, byte totals."""
        records = self.records()
        disk = self._disk_objects()
        object_bytes = sum(path.stat().st_size for path in disk.values())
        try:
            manifest_bytes = self.manifest_path.stat().st_size
        except OSError:
            manifest_bytes = 0
        return {
            "root": str(self.root),
            "objects": len(disk),
            "object_bytes": object_bytes,
            "manifest_bytes": manifest_bytes,
            "records": len(records),
            "programs": sum(1 for r in records if r.object_id is not None),
            "verdicts": sum(1 for r in records if r.verdict is not None),
            "degraded": self.degraded,
        }

    def verify_objects(self) -> Iterator[Tuple[StoreRecord, bool]]:
        """Strict-verify every live program record; yields ``(record, ok)``."""
        for record in self.records():
            if record.object_id is None:
                continue
            found, value = self.get(record.key, verify=True)
            yield record, bool(found) and isinstance(value, RoutingProgram)
