#!/usr/bin/env python
"""Quickstart: build a network, install routing schemes, measure stretch and memory.

The library's whole subject is the trade-off between *stretch factor* (how
much longer routing paths are than shortest paths) and *local memory* (how
many bits each router needs).  This script builds a small random network,
installs three universal routing schemes on it and prints, for each, the
exact stretch and the measured per-router memory — the two axes of the
paper's Table 1.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    CowenLandmarkScheme,
    IntervalRoutingScheme,
    ShortestPathTableScheme,
    generators,
    memory_profile,
    route,
    stretch_factor,
)


def main() -> None:
    # A random connected network with 64 routers.
    graph = generators.random_connected_graph(64, extra_edge_prob=0.08, seed=7)
    print(f"network: {graph.n} routers, {graph.num_edges} links, max degree {graph.max_degree()}")

    schemes = [
        ShortestPathTableScheme(),        # stretch 1, Theta(n log n) bits per router
        IntervalRoutingScheme(),          # stretch 1, cheaper on structured graphs
        CowenLandmarkScheme(seed=1),      # stretch <= 3, ~sqrt(n) entries per router
    ]

    print(f"\n{'scheme':<22} {'stretch':>8} {'max bits':>10} {'total bits':>12} {'mean bits':>10}")
    print("-" * 68)
    for scheme in schemes:
        routing = scheme.build(graph)
        profile = memory_profile(routing)
        s = float(stretch_factor(routing))
        print(
            f"{scheme.name:<22} {s:>8.2f} {profile.local:>10d} "
            f"{profile.global_:>12d} {profile.mean:>10.1f}"
        )

    # Follow one message hop by hop under the landmark scheme.
    landmark_routing = CowenLandmarkScheme(seed=1).build(graph)
    result = route(landmark_routing, 0, 63)
    print(f"\nroute 0 -> 63 under landmark routing: {' -> '.join(map(str, result.path))}")
    print(f"delivered: {result.delivered}, length {result.length}")


if __name__ == "__main__":
    main()
