#!/usr/bin/env python
"""Figure 1 of the paper: a matrix of constraints on the Petersen graph.

The Petersen graph has a unique shortest path between every pair of vertices,
so once five vertices are designated "constrained" (a1..a5) and the other
five "target" (b1..b5), *every* shortest-path routing function is forced to
leave each a_i through one specific output port for each b_j.  Recording
those forced ports gives the 5x5 matrix of constraints the paper draws in
Figure 1 — the simplest concrete instance of the machinery behind the
Theorem 1 lower bound.

Run with:  python examples/petersen_constraints.py
"""

from __future__ import annotations

from repro import ShortestPathTableScheme, petersen_constraint_matrix, verify_constraint_matrix
from repro.constraints.reconstruction import query_constrained_ports, reconstruct_matrix


def main() -> None:
    figure = petersen_constraint_matrix()
    graph = figure.graph

    print("Petersen graph:", graph.n, "vertices,", graph.num_edges, "edges")
    print("constrained vertices (a1..a5):", list(figure.constrained))
    print("target vertices     (b1..b5):", list(figure.targets))

    print("\nmatrix of constraints (entry = forced output port of a_i towards b_j):")
    header = "      " + "  ".join(f"b{j + 1}" for j in range(5))
    print(header)
    for i, row in enumerate(figure.matrix.entries):
        print(f"  a{i + 1}:  " + "   ".join(str(v) for v in row))

    print("\nverified as a shortest-path matrix of constraints:", figure.report.ok)

    # The matrix stays forced for every stretch factor below 3/2 ...
    below_three_halves = verify_constraint_matrix(
        graph, figure.matrix, figure.constrained, figure.targets, stretch=1.5, strict=True
    )
    # ... but not at stretch 2, where longer detours become admissible.
    at_two = verify_constraint_matrix(
        graph, figure.matrix, figure.constrained, figure.targets, stretch=2.0, strict=False
    )
    print("still forced below stretch 3/2:", below_three_halves.ok)
    print("still forced at stretch 2:     ", at_two.ok)

    # Any shortest-path routing scheme built on the graph must answer with
    # exactly these ports: query one and rebuild the (canonical) matrix.
    routing = ShortestPathTableScheme().build(graph)
    witness = query_constrained_ports(routing, figure.constrained, figure.targets)
    rebuilt = reconstruct_matrix(witness)
    print("\nmatrix reconstructed from the routing tables of a1..a5 (canonical form):")
    for row in rebuilt.entries:
        print("   ", " ".join(str(v) for v in row))
    print("matches the figure's canonical form:", rebuilt.entries == figure.matrix.canonical().entries)


if __name__ == "__main__":
    main()
