#!/usr/bin/env python
"""Theorem 1 end to end: build a worst-case network and watch the lower bound bite.

The paper's main theorem says that for any stretch factor below 2 there are
n-node networks on which ``Theta(n^eps)`` routers each need
``Omega(n^{1-eps} log n)`` memory bits.  This script makes the whole proof
executable on a concrete instance:

1. build the padded graph of constraints ``G_n(eps)`` (Lemma 2 + padding);
2. check that its matrix really is forced for every stretch < 2 (Definition 1);
3. install an ordinary shortest-path routing-table scheme on it and measure
   how many bits the constrained routers actually store;
4. rebuild the matrix from nothing but those routers' answers plus the list
   of target labels (the information-theoretic argument of Section 4);
5. print the finite-n lower bound next to the measured encoding and the
   generic ``n log n`` routing-table upper bound.

Run with:  python examples/lower_bound_demo.py [n] [eps]
"""

from __future__ import annotations

import sys

from repro import ShortestPathTableScheme, memory_profile, theorem1_bound, verify_constraint_matrix, worst_case_network
from repro.constraints.reconstruction import verify_reconstruction
from repro.memory.bounds import routing_table_local_upper


def main(n: int = 240, eps: float = 0.5) -> None:
    print(f"Theorem 1 demo: n = {n}, eps = {eps}")
    bound = theorem1_bound(n, eps)
    params = bound.parameters
    print(
        f"parameters: p = {params.p} constrained routers, q = {params.q} targets, "
        f"port alphabet d = {params.d}"
    )

    # (1) + (2): the worst-case network and its forced matrix.
    cg = worst_case_network(n, eps, seed=42)
    report = verify_constraint_matrix(
        cg.graph, cg.matrix, cg.constrained, cg.targets, stretch=2.0, strict=True
    )
    print(f"network built: {cg.order} vertices ({len(cg.padding)} of them padding path)")
    print(f"matrix of constraints verified for every stretch < 2: {report.ok}")

    # (3): measure an actual universal scheme on it.
    routing = ShortestPathTableScheme().build(cg.graph)
    profile = memory_profile(routing)
    constrained_bits = [int(profile.bits_per_node[a]) for a in cg.constrained]
    padding_bits = [int(profile.bits_per_node[v]) for v in cg.padding] or [0]

    # (4): the reconstruction argument, for real.
    reconstructed = verify_reconstruction(cg, routing)
    print(f"matrix rebuilt from the constrained routers' answers: {reconstructed}")

    # (5): the numbers.
    print("\nper-router memory (bits):")
    print(f"  Theorem 1 lower bound (avg over the {params.p} constrained routers): "
          f"{bound.per_router_bits:10.0f}")
    print(f"  asymptotic form n^(1-eps) * log2 n:                                  "
          f"{bound.asymptotic_per_router_bits:10.0f}")
    print(f"  measured routing-table encoding, constrained routers (min/mean/max): "
          f"{min(constrained_bits)} / {sum(constrained_bits) / len(constrained_bits):.0f} / "
          f"{max(constrained_bits)}")
    print(f"  measured routing-table encoding, padding-path routers (max):         "
          f"{max(padding_bits)}")
    print(f"  generic routing-table upper bound (any router):                      "
          f"{routing_table_local_upper(n):10.0f}")
    print(
        "\nreading: the constrained routers are stuck near the n log n upper bound "
        "while the padding routers cost almost nothing — routing tables cannot be "
        "compressed locally at any stretch below 2."
    )


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 240
    epsilon = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5
    main(size, epsilon)
