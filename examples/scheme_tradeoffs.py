#!/usr/bin/env python
"""The space/stretch trade-off across graph families (the shape of Table 1).

For each of several graph families this script measures every implemented
universal routing scheme: exact stretch factor, maximum per-router memory and
total memory.  Two effects from the paper become visible:

* on structured graphs (hypercube, tree, outerplanar) the shortest-path
  schemes are already cheap — the lower bound is a *worst-case* statement;
* on random (worst-case-like) graphs the stretch-1 schemes pay
  ``Theta(n log n)`` per router while the landmark schemes (stretch <= 3)
  and the spanner compositions (larger stretch) store much less.

Run with:  python examples/scheme_tradeoffs.py
"""

from __future__ import annotations

from repro import (
    CowenLandmarkScheme,
    HierarchicalSpannerScheme,
    IntervalRoutingScheme,
    ShortestPathTableScheme,
    TreeIntervalRoutingScheme,
    generators,
    memory_profile,
    stretch_factor,
)
from repro.routing.ecube import ECubeRoutingScheme


def measure(name, scheme, graph):
    try:
        routing = scheme.build(graph)
    except ValueError:
        return None  # partial scheme: does not apply to this graph
    profile = memory_profile(routing)
    return {
        "scheme": name,
        "stretch": float(stretch_factor(routing)),
        "local": profile.local,
        "global": profile.global_,
    }


def main() -> None:
    families = {
        "random (n=96)": generators.random_connected_graph(96, extra_edge_prob=0.07, seed=3),
        "hypercube (n=64)": generators.hypercube(6),
        "tree (n=96)": generators.random_tree(96, seed=3),
        "outerplanar (n=64)": generators.outerplanar_graph(64, extra_chords=30, seed=3),
        "torus 8x8 (n=64)": generators.torus_2d(8, 8),
    }
    schemes = [
        ("routing tables", ShortestPathTableScheme()),
        ("interval routing", IntervalRoutingScheme()),
        ("tree 1-interval", TreeIntervalRoutingScheme()),
        ("e-cube", ECubeRoutingScheme()),
        ("landmarks (s<=3)", CowenLandmarkScheme(seed=1)),
        ("spanner-3 + landmarks", HierarchicalSpannerScheme(spanner_stretch=3.0, seed=1)),
    ]

    for family_name, graph in families.items():
        print(f"\n=== {family_name}: {graph.n} routers, {graph.num_edges} links ===")
        print(f"{'scheme':<24} {'stretch':>8} {'max bits/router':>16} {'total bits':>12}")
        print("-" * 64)
        for scheme_name, scheme in schemes:
            row = measure(scheme_name, scheme, graph)
            if row is None:
                print(f"{scheme_name:<24} {'(not applicable)':>8}")
                continue
            print(
                f"{row['scheme']:<24} {row['stretch']:>8.2f} {row['local']:>16d} {row['global']:>12d}"
            )


if __name__ == "__main__":
    main()
