"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that editable installs work on
environments whose setuptools/pip combination lacks PEP 660 support (no
``wheel`` package available offline): ``pip install -e .`` falls back to the
legacy ``setup.py develop`` path there.
"""

from setuptools import setup

setup()
