#!/usr/bin/env python3
"""Project-specific AST lint for the routing/sim core.

Five rules guard invariants that generic linters cannot see, all scoped
to the modules where the invariant lives:

REP001  Raw ``-2`` / ``-3`` integer literals anywhere in ``repro.sim`` or
        ``repro.routing``.  Those values are the :data:`MISDELIVER` /
        :data:`DROPPED` transition sentinels of
        :mod:`repro.routing.program`; an inline literal silently
        duplicates the protocol and breaks the moment a sentinel is
        renumbered.  The definition site itself (``MISDELIVER = -2``,
        ``DROPPED = -3`` in ``program.py``) is exempt; anything else
        needs ``# repro-lint: allow-sentinel`` with a reason.

REP002  Bare narrow integer dtype literals (``np.int16`` / ``np.int32``)
        in the modules that build or decode transition arrays
        (``routing/program.py``, ``sim/engine.py``, ``sim/faults.py``).
        Transition-array dtypes must come from
        :func:`repro.routing.program.transition_dtype` so a program's
        width tracks its domain; a hard-coded width either wastes memory
        or overflows.  Escape with ``# repro-lint: allow-dtype`` where a
        fixed width is the point (the ``transition_dtype`` ladder itself,
        scipy's int32 CSR index arrays).

REP003  Nondeterminism in the compile/verify modules
        (``routing/program.py``, ``routing/verify.py``): ``import
        random``, any ``np.random.*`` sampler, or ``default_rng()``
        called without a seed.  Compilation and verification must be
        bit-reproducible functions of their inputs — cache keys,
        fingerprints, and the static soundness proofs all assume it.
        There is no escape comment for this rule on purpose.

REP004  Python-level loops over per-pair arrays in the flow module
        (``analysis/flow.py``).  The whole point of the demand-matrix
        representation is that "millions of messages" stays a float
        array; a ``for`` loop (or comprehension) whose iterable names a
        pair/demand/load array — directly, through ``.tolist()`` /
        ``.ravel()`` / ``.flatten()`` / ``.flat`` / ``np.nditer``, or
        inside ``zip()`` / ``enumerate()`` — materialises per-pair
        Python objects and demotes the vectorised accumulators to
        interpreter speed.  Layer loops (``range(...)``) and generator
        pipelines (calls to ordinary functions) stay legal.  Escape with
        ``# repro-lint: allow-pair-loop`` and a reason.

REP005  Bare ``print`` calls in the CLI package (``repro/cli``).  The
        ``repro`` command's stdout is a machine-readable JSONL stream —
        one JSON object per cell, nothing else — and every write must go
        through :func:`repro.cli._output.emit` so a stray diagnostic
        line can never corrupt a consumer's parse.  Escape with
        ``# repro-lint: allow-print`` and a reason.

Pure stdlib (``ast`` + ``tokenize``): runs anywhere CPython runs, no
installs.  Exit status 1 when any finding is emitted, 0 on a clean tree.
"""

from __future__ import annotations

import ast
import sys
import tokenize
from pathlib import Path
from typing import Iterator, List, NamedTuple, Sequence, Set

#: Repo root (this file lives in ``tools/``).
ROOT = Path(__file__).resolve().parent.parent

#: REP001 scope: every module of the sim + routing core.
SENTINEL_SCOPE = ("src/repro/sim", "src/repro/routing")

#: Names whose top-level definition is the one legitimate raw literal.
SENTINEL_NAMES = {"MISDELIVER": -2, "DROPPED": -3}

#: REP002 scope: modules that construct or decode transition arrays.
DTYPE_SCOPE = (
    "src/repro/routing/program.py",
    "src/repro/sim/engine.py",
    "src/repro/sim/faults.py",
)

#: Narrow widths that must come from ``transition_dtype`` in that scope.
NARROW_DTYPES = {"int16", "int32"}

#: REP003 scope: modules whose output must be a pure function of input.
DETERMINISM_SCOPE = (
    "src/repro/routing/program.py",
    "src/repro/routing/verify.py",
)

#: REP004 scope: the flow accumulators must never loop over pairs.
FLOW_SCOPE = ("src/repro/analysis/flow.py",)

#: REP005 scope: all CLI output must flow through the JSONL writer.
CLI_SCOPE = ("src/repro/cli",)

#: Identifier substrings that mark a per-pair/per-arc array in that scope.
PAIR_MARKERS = (
    "pair",
    "demand",
    "load",
    "weight",
    "src",
    "dst",
    "arc",
    "code",
    "state",
)


class Finding(NamedTuple):
    path: Path
    line: int
    code: str
    message: str

    def render(self) -> str:
        try:
            rel = self.path.relative_to(ROOT)
        except ValueError:
            rel = self.path
        return f"{rel}:{self.line}: {self.code} {self.message}"


def _escaped_lines(source: str, marker: str) -> Set[int]:
    """Line numbers carrying a ``# repro-lint: <marker>`` escape comment.

    Escapes are read from the token stream, not the raw text, so the
    marker appearing inside a string literal does not disable the rule.
    """
    lines: Set[int] = set()
    try:
        tokens = tokenize.generate_tokens(iter(source.splitlines(keepends=True)).__next__)
        for tok in tokens:
            if tok.type == tokenize.COMMENT and f"repro-lint: {marker}" in tok.string:
                lines.add(tok.start[0])
    except tokenize.TokenError:
        pass
    return lines


def _is_neg_literal(node: ast.AST, values: Sequence[int]) -> bool:
    return (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.USub)
        and isinstance(node.operand, ast.Constant)
        and type(node.operand.value) is int
        and node.operand.value in values
    )


def _sentinel_definition_targets(tree: ast.Module) -> Set[int]:
    """Ids of the value nodes in ``MISDELIVER = -2`` / ``DROPPED = -3``.

    Only module-level single-target assignments to the canonical names
    count as the definition site.
    """
    exempt: Set[int] = set()
    for stmt in tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id in SENTINEL_NAMES
            and _is_neg_literal(stmt.value, (-SENTINEL_NAMES[stmt.targets[0].id],))
        ):
            exempt.add(id(stmt.value))
    return exempt


def check_sentinels(path: Path, tree: ast.Module, source: str) -> Iterator[Finding]:
    """REP001: raw -2/-3 literals outside the sentinel definitions."""
    escaped = _escaped_lines(source, "allow-sentinel")
    exempt = _sentinel_definition_targets(tree)
    for node in ast.walk(tree):
        if not _is_neg_literal(node, (2, 3)):
            continue
        if id(node) in exempt or node.lineno in escaped:
            continue
        value = -node.operand.value  # type: ignore[attr-defined]
        name = "MISDELIVER" if value == -2 else "DROPPED"
        yield Finding(
            path,
            node.lineno,
            "REP001",
            f"raw {value} literal: use repro.routing.program.{name} "
            "(or '# repro-lint: allow-sentinel' with a reason)",
        )


def check_dtypes(path: Path, tree: ast.Module, source: str) -> Iterator[Finding]:
    """REP002: bare np.int16/np.int32 where transition_dtype is required."""
    escaped = _escaped_lines(source, "allow-dtype")
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Attribute)
            and node.attr in NARROW_DTYPES
            and isinstance(node.value, ast.Name)
            and node.value.id in ("np", "numpy")
        ):
            continue
        if node.lineno in escaped:
            continue
        yield Finding(
            path,
            node.lineno,
            "REP002",
            f"bare np.{node.attr} in a transition-array module: size the "
            "dtype with transition_dtype(num_values) "
            "(or '# repro-lint: allow-dtype' where a fixed width is the point)",
        )


def check_determinism(path: Path, tree: ast.Module, source: str) -> Iterator[Finding]:
    """REP003: nondeterminism sources in compile/verify modules."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    yield Finding(
                        path,
                        node.lineno,
                        "REP003",
                        "stdlib random imported in a compile/verify module: "
                        "these must be deterministic functions of their inputs",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                yield Finding(
                    path,
                    node.lineno,
                    "REP003",
                    "stdlib random imported in a compile/verify module: "
                    "these must be deterministic functions of their inputs",
                )
        elif isinstance(node, ast.Call):
            func = node.func
            # np.random.<sampler>(...) — module-level samplers draw from
            # global state; default_rng(seed) is the one sanctioned entry
            # and only with an explicit seed.
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Attribute)
                and func.value.attr == "random"
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id in ("np", "numpy")
            ):
                if func.attr != "default_rng":
                    yield Finding(
                        path,
                        node.lineno,
                        "REP003",
                        f"np.random.{func.attr}() draws from global state in a "
                        "compile/verify module",
                    )
                elif not node.args and not node.keywords:
                    yield Finding(
                        path,
                        node.lineno,
                        "REP003",
                        "default_rng() without a seed in a compile/verify module: "
                        "pass an explicit seed",
                    )
            elif (
                isinstance(func, ast.Name)
                and func.id == "default_rng"
                and not node.args
                and not node.keywords
            ):
                yield Finding(
                    path,
                    node.lineno,
                    "REP003",
                    "default_rng() without a seed in a compile/verify module: "
                    "pass an explicit seed",
                )


def _marker_name(node: ast.AST) -> str | None:
    """The identifier when ``node`` names a per-pair array, else ``None``.

    ALL_CAPS identifiers are exempt: module constants (``DEMAND_MODELS``)
    are small registries, never per-pair runtime data.
    """
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    else:
        return None
    if name.isupper():
        return None
    lowered = name.lower()
    if any(marker in lowered for marker in PAIR_MARKERS):
        return name
    return None


def _pair_iterable(node: ast.AST) -> str | None:
    """The offending expression when ``node`` iterates a per-pair array.

    Catches the array itself, python-materialising views of it
    (``.tolist()`` / ``.ravel()`` / ``.flatten()`` / ``.flat`` /
    ``np.nditer``), and ``zip()`` / ``enumerate()`` wrapping any of
    those.  ``range(...)``, ``.items()``, and calls to ordinary
    functions are not flagged — layer loops and generator pipelines are
    how the module is *supposed* to iterate.
    """
    name = _marker_name(node)
    if name is not None:
        return name
    if isinstance(node, ast.Attribute) and node.attr == "flat":
        inner = _marker_name(node.value)
        if inner is not None:
            return f"{inner}.flat"
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in (
            "tolist",
            "ravel",
            "flatten",
        ):
            inner = _marker_name(func.value)
            if inner is not None:
                return f"{inner}.{func.attr}()"
        if isinstance(func, ast.Name) and func.id in ("zip", "enumerate"):
            for arg in node.args:
                inner = _pair_iterable(arg)
                if inner is not None:
                    return inner
        if isinstance(func, ast.Attribute) and func.attr == "nditer":
            for arg in node.args:
                inner = _marker_name(arg)
                if inner is not None:
                    return f"nditer({inner})"
    return None


def check_pair_loops(path: Path, tree: ast.Module, source: str) -> Iterator[Finding]:
    """REP004: python-level loops over per-pair arrays in the flow module."""
    escaped = _escaped_lines(source, "allow-pair-loop")
    loops: List[tuple] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            loops.append((node.lineno, node.iter))
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            for gen in node.generators:
                loops.append((node.lineno, gen.iter))
    for lineno, iter_node in sorted(loops, key=lambda item: item[0]):
        if lineno in escaped:
            continue
        name = _pair_iterable(iter_node)
        if name is not None:
            yield Finding(
                path,
                lineno,
                "REP004",
                f"python loop over per-pair array {name!r}: accumulate with "
                "vectorised scatters (np.add.at / np.bincount) instead "
                "(or '# repro-lint: allow-pair-loop' with a reason)",
            )


def check_cli_prints(path: Path, tree: ast.Module, source: str) -> Iterator[Finding]:
    """REP005: bare ``print`` calls in the CLI package."""
    escaped = _escaped_lines(source, "allow-print")
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            continue
        if node.lineno in escaped:
            continue
        yield Finding(
            path,
            node.lineno,
            "REP005",
            "bare print() in the CLI package: stdout is a JSONL stream — "
            "write through repro.cli._output.emit "
            "(or '# repro-lint: allow-print' with a reason)",
        )


def _in_scope(path: Path, scope: Sequence[str], root: Path) -> bool:
    try:
        rel = path.relative_to(root).as_posix()
    except ValueError:
        # Explicit CLI operand outside the repo (tests, editor buffers):
        # match on the trailing src/repro/... components instead.
        rel = path.as_posix()
    hay = "/" + rel
    return any(hay.endswith("/" + entry) or f"/{entry}/" in hay for entry in scope)


def lint_file(path: Path, root: Path = ROOT) -> List[Finding]:
    """All findings for one file (empty when the file is out of scope)."""
    source = path.read_text()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [Finding(path, exc.lineno or 1, "REP000", f"syntax error: {exc.msg}")]
    findings: List[Finding] = []
    if _in_scope(path, SENTINEL_SCOPE, root):
        findings.extend(check_sentinels(path, tree, source))
    if _in_scope(path, DTYPE_SCOPE, root):
        findings.extend(check_dtypes(path, tree, source))
    if _in_scope(path, DETERMINISM_SCOPE, root):
        findings.extend(check_determinism(path, tree, source))
    if _in_scope(path, FLOW_SCOPE, root):
        findings.extend(check_pair_loops(path, tree, source))
    if _in_scope(path, CLI_SCOPE, root):
        findings.extend(check_cli_prints(path, tree, source))
    return findings


def lint_tree(root: Path = ROOT) -> List[Finding]:
    """Lint every scoped python file under ``root``."""
    findings: List[Finding] = []
    seen: Set[Path] = set()
    for scope in (SENTINEL_SCOPE, DTYPE_SCOPE, DETERMINISM_SCOPE, FLOW_SCOPE, CLI_SCOPE):
        for entry in scope:
            target = root / entry
            paths = sorted(target.rglob("*.py")) if target.is_dir() else [target]
            for path in paths:
                if path in seen or not path.exists():
                    continue
                seen.add(path)
                findings.extend(lint_file(path, root))
    findings.sort(key=lambda f: (str(f.path), f.line, f.code))
    return findings


def main(argv: Sequence[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if args:
        findings = []
        for arg in args:
            findings.extend(lint_file(Path(arg).resolve()))
    else:
        findings = lint_tree()
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"repro-lint: {len(findings)} finding(s)")
        return 1
    print("repro-lint: clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
